// Snapshot replay differential: the restore contract pinned end to end.
// A run that checkpoints mid-replay (save → load → resume the suffix)
// must be observably identical to one that never snapshotted — same
// placements (state, start, end per job), same end time, byte-identical
// eventlog — across every queue policy and across dynamic
// drain/grow/shrink scenarios with the checkpoint taken mid-stream.
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic.hpp"
#include "grug/grug.hpp"
#include "policy/policies.hpp"
#include "sim/replay.hpp"
#include "sim/scenario.hpp"
#include "snapshot/snapshot.hpp"

namespace fluxion {
namespace {

constexpr const char* kSystem = R"(
filters node core
filter-at cluster rack
cluster count=1
  rack count=2
    node count=4
      core count=4
)";

constexpr const char* kRackFragment = R"(
filters node core
filter-at rack
rack count=1
  node count=4
    core count=4
)";

struct World {
  graph::ResourceGraph g{0, 1 << 20};
  graph::VertexId root = graph::kInvalidVertex;
  policy::LowIdPolicy pol;
  std::unique_ptr<traverser::Traverser> trav;
  std::unique_ptr<queue::JobQueue> q;
  std::unique_ptr<dynamic::DynamicResources> dyn;

  explicit World(queue::QueuePolicy qp) {
    auto recipe = grug::parse(kSystem);
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    trav = std::make_unique<traverser::Traverser>(g, root, pol);
    q = std::make_unique<queue::JobQueue>(*trav, qp);
    q->set_eventlog(true);
    dyn = std::make_unique<dynamic::DynamicResources>(g, *trav, q.get());
  }
};

using Placements =
    std::map<queue::JobId,
             std::tuple<queue::JobState, util::TimePoint, util::TimePoint>>;

Placements placements(const queue::JobQueue& q,
                      const std::vector<queue::JobId>& ids) {
  Placements out;
  for (const auto id : ids) {
    const auto* job = q.find(id);
    EXPECT_NE(job, nullptr) << "job " << id;
    if (job == nullptr) continue;
    out[id] = {job->state, job->start_time, job->end_time};
  }
  return out;
}

void expect_eq_placements(const Placements& straight,
                          const Placements& resumed) {
  ASSERT_EQ(straight.size(), resumed.size());
  for (const auto& [id, expected] : straight) {
    const auto it = resumed.find(id);
    ASSERT_NE(it, resumed.end()) << "job " << id << " missing after resume";
    EXPECT_EQ(it->second, expected)
        << "job " << id << " diverged after snapshot resume";
  }
}

// Online trace exercising waits, backfill windows and a rejection.
std::vector<sim::TraceJob> demo_trace() {
  return {
      {4, 400, 0},    {2, 300, 0},    {8, 200, 50},  {1, 100, 120},
      {3, 250, 300},  {16, 60, 350},  {2, 500, 400}, {6, 150, 700},
      {1, 50, 900},   {8, 300, 950},  {4, 120, 1200}, {2, 80, 1300},
  };
}

class SnapshotDifferential
    : public ::testing::TestWithParam<queue::QueuePolicy> {};

TEST_P(SnapshotDifferential, TraceResumeMatchesStraightReplay) {
  const auto trace = demo_trace();

  World straight(GetParam());
  const auto r_straight = sim::replay_trace(*straight.q, trace, 4);
  ASSERT_TRUE(r_straight) << r_straight.error().message;

  // Checkpoint mid-replay (several arrivals before and after t=600).
  World writer(GetParam());
  std::string bytes;
  const auto r_chk = sim::replay_trace_checkpoint(
      *writer.q, trace, 4, 600,
      [&](queue::JobQueue& q, std::size_t) {
        bytes = snapshot::save_engine(writer.g, *writer.trav, &q);
      });
  ASSERT_TRUE(r_chk) << r_chk.error().message;
  ASSERT_FALSE(bytes.empty());
  // The checkpointing run itself is unperturbed.
  ASSERT_EQ(r_chk->ids, r_straight->ids);
  EXPECT_EQ(straight.q->eventlog().jsonl(), writer.q->eventlog().jsonl());

  // Restore and replay only the suffix.
  auto eng = snapshot::load_engine(bytes);
  ASSERT_TRUE(eng) << eng.error().message;
  ASSERT_NE((*eng)->queue, nullptr);
  const auto prefix = (*eng)->queue->stats().submitted;
  ASSERT_GT(prefix, 0u);
  ASSERT_LT(prefix, trace.size());
  const auto r_resume = sim::resume_trace(*(*eng)->queue, trace, 4);
  ASSERT_TRUE(r_resume) << r_resume.error().message;

  ASSERT_EQ(r_resume->ids, r_straight->ids);
  EXPECT_EQ(r_resume->end_time, r_straight->end_time);
  expect_eq_placements(placements(*straight.q, r_straight->ids),
                       placements(*(*eng)->queue, r_resume->ids));
  EXPECT_EQ((*eng)->queue->eventlog().jsonl(),
            straight.q->eventlog().jsonl());
}

TEST_P(SnapshotDifferential, ScenarioResumeAcrossDrainGrowShrink) {
  // Drain hits at 300 (mid-run jobs evicted/requeued), the checkpoint at
  // 450 lands between the drain and the grow, then a rack grows at 600
  // and shrinks away again at 900 — the restored engine must carry the
  // drained filters forward and apply the suffix events itself.
  sim::Scenario sc;
  sc.jobs = {{4, 400, 0}, {2, 300, 0}, {3, 500, 100}, {6, 200, 500},
             {2, 150, 650}, {8, 120, 700}, {1, 90, 1000}};
  sc.events = {
      {300, sim::DynEventKind::status, "/cluster0/rack0",
       graph::ResourceStatus::drained, queue::EvictPolicy::requeue, ""},
      {600, sim::DynEventKind::grow, "/cluster0",
       graph::ResourceStatus::up, queue::EvictPolicy::requeue, "rack"},
      {800, sim::DynEventKind::status, "/cluster0/rack0",
       graph::ResourceStatus::up, queue::EvictPolicy::requeue, ""},
      {900, sim::DynEventKind::shrink, "/cluster0/rack2",
       graph::ResourceStatus::up, queue::EvictPolicy::requeue, ""},
  };
  const sim::RecipeResolver resolver =
      [](const std::string& ref) -> util::Expected<std::string> {
    if (ref == "rack") return std::string(kRackFragment);
    return util::Error{util::Errc::not_found, "unknown recipe " + ref};
  };

  World straight(GetParam());
  const auto r_straight = sim::replay_scenario(*straight.q, *straight.dyn,
                                               sc, 4, resolver);
  ASSERT_TRUE(r_straight) << r_straight.error().message;

  World writer(GetParam());
  std::string bytes;
  const auto r_chk = sim::replay_scenario_checkpoint(
      *writer.q, *writer.dyn, sc, 4, resolver, 450,
      [&](queue::JobQueue& q) {
        bytes = snapshot::save_engine(writer.g, *writer.trav, &q);
      });
  ASSERT_TRUE(r_chk) << r_chk.error().message;
  ASSERT_FALSE(bytes.empty());
  ASSERT_EQ(r_chk->ids, r_straight->ids);

  auto eng = snapshot::load_engine(bytes);
  ASSERT_TRUE(eng) << eng.error().message;
  ASSERT_NE((*eng)->queue, nullptr);
  dynamic::DynamicResources rdyn(*(*eng)->graph, *(*eng)->traverser,
                                 (*eng)->queue.get());
  const auto r_resume = sim::resume_scenario(*(*eng)->queue, rdyn, sc, 4,
                                             resolver);
  ASSERT_TRUE(r_resume) << r_resume.error().message;

  ASSERT_EQ(r_resume->ids, r_straight->ids);
  EXPECT_EQ(r_resume->end_time, r_straight->end_time);
  // Only the suffix events replay on resume: the grow and the shrink.
  EXPECT_EQ(r_resume->grow_events, 1u);
  EXPECT_EQ(r_resume->shrink_events, 1u);
  expect_eq_placements(placements(*straight.q, r_straight->ids),
                       placements(*(*eng)->queue, r_resume->ids));
  EXPECT_EQ((*eng)->queue->eventlog().jsonl(),
            straight.q->eventlog().jsonl());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SnapshotDifferential,
    ::testing::Values(queue::QueuePolicy::fcfs,
                      queue::QueuePolicy::conservative_backfill,
                      queue::QueuePolicy::easy_backfill,
                      queue::QueuePolicy::hybrid_backfill),
    [](const ::testing::TestParamInfo<queue::QueuePolicy>& info) {
      switch (info.param) {
        case queue::QueuePolicy::fcfs: return "fcfs";
        case queue::QueuePolicy::conservative_backfill: return "conservative";
        case queue::QueuePolicy::easy_backfill: return "easy";
        case queue::QueuePolicy::hybrid_backfill: return "hybrid";
      }
      return "unknown";
    });

}  // namespace
}  // namespace fluxion
