// Bench-scale smoke: build the paper's full 1008-node High-LOD system and
// the 2418-node quartz system inside ctest, so the bench-sized code paths
// (graph construction, filter installation, deep matching, reservations)
// are exercised by the ordinary test run.
#include <gtest/gtest.h>

#include "core/resource_query.hpp"
#include "grug/recipes.hpp"
#include "jobspec/jobspec.hpp"

namespace fluxion::core {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

TEST(Scale, HighLod1008NodeSystem) {
  auto rq = ResourceQuery::create(grug::recipes::high_lod(/*prune=*/true));
  ASSERT_TRUE(rq);
  auto& g = (*rq)->graph();
  EXPECT_EQ(g.vertices_of_type(*g.find_type("node")).size(), 1008u);
  EXPECT_EQ(g.live_vertex_count(), 1u + 56 + 1008 + 2016 + 2016 * 38);

  // The paper's §6.1 jobspec, a few times over.
  auto js = make({res("node", 1, {slot(1, {res("core", 10),
                                           res("memory", 8),
                                           res("bb", 1)})})},
                 3600);
  ASSERT_TRUE(js);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*rq)->match_allocate(*js)) << i;
  }
  // Whole-rack exclusive request still finds a free rack.
  auto rack_job = make(
      {res("rack", 1, {slot(18, {xres("node", 1)})})}, 600);
  ASSERT_TRUE(rack_job);
  EXPECT_TRUE((*rq)->match_allocate(*rack_job));
  EXPECT_TRUE((*rq)->traverser().verify_filters());
}

TEST(Scale, Quartz2418Reservations) {
  auto rq = ResourceQuery::create(grug::recipes::quartz(/*prune=*/true));
  ASSERT_TRUE(rq);
  auto big = make({slot(2418, {xres("node", 1, {res("core", 36)})})}, 100);
  ASSERT_TRUE(big);
  // Fill the whole machine, then queue two more machine-sized jobs.
  auto r1 = (*rq)->match_allocate_orelse_reserve(*big);
  auto r2 = (*rq)->match_allocate_orelse_reserve(*big);
  auto r3 = (*rq)->match_allocate_orelse_reserve(*big);
  ASSERT_TRUE(r1);
  ASSERT_TRUE(r2);
  ASSERT_TRUE(r3);
  EXPECT_EQ(r1->at, 0);
  EXPECT_EQ(r2->at, 100);
  EXPECT_EQ(r3->at, 200);
  // Free the middle window; a small job slots into it immediately.
  ASSERT_TRUE((*rq)->cancel(r2->job));
  auto small = make({slot(100, {xres("node", 1)})}, 80);
  ASSERT_TRUE(small);
  auto r4 = (*rq)->match_allocate_orelse_reserve(*small);
  ASSERT_TRUE(r4);
  EXPECT_EQ(r4->at, 100);
}

}  // namespace
}  // namespace fluxion::core
