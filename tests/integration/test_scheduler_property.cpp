// Randomized end-to-end property suite: a storm of allocate / reserve /
// cancel operations against invariants that must hold no matter what.
//
// Invariants checked:
//   1. pruning filters always equal a from-scratch recount (SDFU exactness);
//   2. every vertex planner stays structurally valid;
//   3. exclusive allocations are disjoint: if job A holds vertex v
//      exclusively during window W, no time-overlapping job touches v or
//      anything in v's containment subtree;
//   4. pool vertices are never oversubscribed: the sum of overlapping
//      jobs' claimed units on a vertex never exceeds its size;
//   5. committed windows never move (reservations are firm);
//   6. cancel is a perfect inverse: after cancelling everything the graph
//      returns to a fully idle state.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

struct ActiveJob {
  JobId id;
  TimePoint at;
  util::Duration d;
  std::vector<ResourceUnit> resources;
};

struct Params {
  std::uint64_t seed;
  const char* policy;
  int steps;
};

class SchedulerStorm : public ::testing::TestWithParam<Params> {
 protected:
  SchedulerStorm() : g(0, 1 << 22) {
    auto recipe = grug::parse(
        "filters node core memory\nfilter-at cluster rack\n"
        "cluster count=1\n  rack count=3\n    node count=4\n"
        "      core count=8\n      memory count=2 size=16\n      gpu count=1\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    auto pol = policy::create(GetParam().policy);
    EXPECT_TRUE(pol);
    policy_ = std::move(*pol);
    trav = std::make_unique<Traverser>(g, *root, *policy_);
    // Post-mutation audit hook: every match/cancel re-validates all vertex
    // planners and the pruning filters, so corruption surfaces at the
    // mutation that caused it (as Errc::internal), not at the end.
    trav->set_audit(true);
    baseline_internal_ = util::internal_error_count();
  }

  bool windows_overlap(const ActiveJob& a, const ActiveJob& b) const {
    return a.at < b.at + b.d && b.at < a.at + a.d;
  }

  /// Invariants 3 + 4 from the recorded allocations.
  void check_disjointness(const std::vector<ActiveJob>& jobs) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      for (std::size_t j = i + 1; j < jobs.size(); ++j) {
        if (!windows_overlap(jobs[i], jobs[j])) continue;
        // Exclusive whole-vertex claims block the other job's subtree use.
        for (const auto& ru : jobs[i].resources) {
          if (!ru.exclusive || ru.units != g.vertex(ru.vertex).size) continue;
          const std::string& prefix = g.vertex(ru.vertex).path;
          for (const auto& other : jobs[j].resources) {
            const std::string& p = g.vertex(other.vertex).path;
            ASSERT_FALSE(p == prefix ||
                         (p.size() > prefix.size() &&
                          p.compare(0, prefix.size(), prefix) == 0 &&
                          p[prefix.size()] == '/'))
                << "job " << jobs[j].id << " uses " << p << " inside job "
                << jobs[i].id << "'s exclusive " << prefix;
          }
        }
      }
    }
    // Per-vertex unit accounting across overlapping jobs.
    std::map<VertexId, std::vector<std::pair<const ActiveJob*, std::int64_t>>>
        users;
    for (const auto& job : jobs) {
      for (const auto& ru : job.resources) {
        users[ru.vertex].emplace_back(&job, ru.units);
      }
    }
    for (const auto& [v, list] : users) {
      // Probe at every job start among the users.
      for (const auto& [probe_job, _] : list) {
        std::int64_t used = 0;
        for (const auto& [job, units] : list) {
          if (job->at <= probe_job->at &&
              probe_job->at < job->at + job->d) {
            used += units;
          }
        }
        ASSERT_LE(used, g.vertex(v).size)
            << "vertex " << g.vertex(v).path << " oversubscribed";
      }
    }
  }

  jobspec::Jobspec random_jobspec(util::Rng& rng) {
    switch (rng.uniform(0, 4)) {
      case 0: {  // whole nodes
        auto js = make({slot(rng.uniform(1, 6),
                             {xres("node", 1, {res("core", 8)})})},
                       rng.uniform(5, 200));
        EXPECT_TRUE(js);
        return *js;
      }
      case 1: {  // cores on a shared node
        auto js = make({res("node", 1,
                            {slot(1, {res("core", rng.uniform(1, 8))})})},
                       rng.uniform(5, 200));
        EXPECT_TRUE(js);
        return *js;
      }
      case 2: {  // memory + gpu mix
        auto js = make(
            {res("node", 1,
                 {slot(1, {res("memory", rng.uniform(1, 32)),
                           res("gpu", 1)})})},
            rng.uniform(5, 200));
        EXPECT_TRUE(js);
        return *js;
      }
      case 3: {  // rack-spread exclusive nodes
        auto js = make({res("rack", 2, {slot(1, {xres("node", 1)})})},
                       rng.uniform(5, 100));
        EXPECT_TRUE(js);
        return *js;
      }
      default: {  // pure core quantity across the cluster
        auto js = make({slot(1, {res("core", rng.uniform(1, 40))})},
                       rng.uniform(5, 100));
        EXPECT_TRUE(js);
        return *js;
      }
    }
  }

  /// Occasionally make a request moldable — the storm's invariants must
  /// hold whatever amount the matcher molds to.
  jobspec::Jobspec maybe_moldable(util::Rng& rng) {
    if (!rng.chance(0.25)) return random_jobspec(rng);
    auto js = make({slot(1, {jobspec::res_range("core",
                                                rng.uniform(1, 8),
                                                rng.uniform(9, 30))})},
                   rng.uniform(5, 150));
    EXPECT_TRUE(js);
    return *js;
  }

  graph::ResourceGraph g;
  std::unique_ptr<MatchPolicy> policy_;
  std::unique_ptr<Traverser> trav;
  std::uint64_t baseline_internal_ = 0;
};

TEST_P(SchedulerStorm, InvariantsHoldUnderChurn) {
  util::Rng rng(GetParam().seed);
  std::vector<ActiveJob> active;
  TimePoint now = 0;
  JobId next_id = 1;
  int committed = 0;

  for (int step = 0; step < GetParam().steps; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.55 || active.empty()) {
      const auto js = maybe_moldable(rng);
      const JobId id = next_id++;
      const MatchOp op = rng.chance(0.5)
                             ? MatchOp::allocate
                             : MatchOp::allocate_orelse_reserve;
      auto r = trav->match(js, op, now, id);
      if (!r) {
        // A failed match must be a scheduling outcome, never corruption.
        ASSERT_NE(r.error().code, util::Errc::internal)
            << "step " << step << ": " << r.error().message;
      }
      if (r) {
        ASSERT_GE(r->at, now);
        if (op == MatchOp::allocate) {
          ASSERT_EQ(r->at, now);
        }
        active.push_back({id, r->at, r->duration, r->resources});
        ++committed;
      }
    } else if (dice < 0.80) {
      const auto i = rng.index(active.size());
      ASSERT_TRUE(trav->cancel(active[i].id));
      active[i] = active.back();
      active.pop_back();
    } else {
      now += rng.uniform(1, 50);
      // Drop jobs that finished before `now` (their spans are history;
      // cancel purges bookkeeping like the queue does on completion).
      std::vector<ActiveJob> still;
      for (auto& job : active) {
        if (job.at + job.d <= now) {
          ASSERT_TRUE(trav->cancel(job.id));
        } else {
          still.push_back(std::move(job));
        }
      }
      active = std::move(still);
    }

    if (step % 23 == 0) {
      ASSERT_TRUE(trav->verify_filters()) << "step " << step;
      check_disjointness(active);
      // Windows must never move (invariant 5).
      for (const auto& job : active) {
        const MatchResult* r = trav->find_job(job.id);
        ASSERT_NE(r, nullptr);
        ASSERT_EQ(r->at, job.at);
        ASSERT_EQ(r->duration, job.d);
      }
    }
  }
  EXPECT_GT(committed, GetParam().steps / 10);

  // Invariant 6: cancel everything; the graph must be fully idle.
  for (const auto& job : active) ASSERT_TRUE(trav->cancel(job.id));
  EXPECT_EQ(trav->job_count(), 0u);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const graph::Vertex& vx = g.vertex(v);
    if (!vx.alive) continue;
    EXPECT_EQ(vx.schedule->span_count(), 0u) << vx.path;
    EXPECT_EQ(vx.x_checker->span_count(), 0u) << vx.path;
    EXPECT_TRUE(vx.schedule->validate());
    if (vx.filter != nullptr) {
      EXPECT_EQ(vx.filter->span_count(), 0u) << vx.path;
    }
  }
  EXPECT_TRUE(g.validate());
  // No mutation anywhere in the storm tripped an internal invariant.
  EXPECT_EQ(util::internal_error_count(), baseline_internal_);
}

INSTANTIATE_TEST_SUITE_P(
    Storm, SchedulerStorm,
    ::testing::Values(Params{1, "low-id", 900}, Params{2, "high-id", 900},
                      Params{3, "variation-aware", 700},
                      Params{4, "locality", 700}, Params{5, "low-id", 1500},
                      Params{6, "high-id", 600},
                      Params{7, "variation-aware", 600}));

}  // namespace
}  // namespace fluxion::traverser
