// Differential property test for the satisfiability cache: placements
// must be byte-identical with the cache on and off. The cache may only
// skip matches that are guaranteed to fail, so every observable — job
// states, start times, end times, rejection set — has to agree across
// random workloads (all policies) and dynamic drain/grow/shrink scenario
// replays. Any divergence means a stale blocked-signature survived a
// mutation it should have been invalidated by.
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dynamic/dynamic.hpp"
#include "grug/grug.hpp"
#include "policy/policies.hpp"
#include "sim/replay.hpp"
#include "sim/scenario.hpp"

namespace fluxion {
namespace {

constexpr const char* kSystem = R"(
filters node core
filter-at cluster rack
cluster count=1
  rack count=2
    node count=4
      core count=4
)";

constexpr const char* kRackFragment = R"(
filters node core
filter-at rack
rack count=1
  node count=4
    core count=4
)";

// One full scheduler stack; built twice per test so the cache-on and
// cache-off runs share nothing but the inputs.
struct World {
  graph::ResourceGraph g{0, 1 << 20};
  graph::VertexId root = graph::kInvalidVertex;
  policy::LowIdPolicy pol;
  std::unique_ptr<traverser::Traverser> trav;
  std::unique_ptr<queue::JobQueue> q;
  std::unique_ptr<dynamic::DynamicResources> dyn;

  World(queue::QueuePolicy qp, bool cache) {
    auto recipe = grug::parse(kSystem);
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    trav = std::make_unique<traverser::Traverser>(g, root, pol);
    trav->set_audit(true);
    q = std::make_unique<queue::JobQueue>(*trav, qp);
    q->set_match_cache(cache);
    dyn = std::make_unique<dynamic::DynamicResources>(g, *trav, q.get());
  }
};

// Everything a user can observe about a finished run, keyed by job id
// (ids are deterministic: both worlds submit the same jobs in order).
using Snapshot =
    std::map<queue::JobId,
             std::tuple<queue::JobState, util::TimePoint, util::TimePoint>>;

Snapshot snapshot(const queue::JobQueue& q,
                  const std::vector<queue::JobId>& ids) {
  Snapshot out;
  for (const auto id : ids) {
    const auto* job = q.find(id);
    EXPECT_NE(job, nullptr) << "job " << id;
    if (job == nullptr) continue;
    out[id] = {job->state, job->start_time, job->end_time};
  }
  return out;
}

void expect_identical(const Snapshot& off, const Snapshot& on) {
  ASSERT_EQ(off.size(), on.size());
  for (const auto& [id, expected] : off) {
    const auto it = on.find(id);
    ASSERT_NE(it, on.end()) << "job " << id << " missing with cache on";
    EXPECT_EQ(it->second, expected)
        << "job " << id << " diverged: state/start/end ("
        << static_cast<int>(std::get<0>(it->second)) << ", "
        << std::get<1>(it->second) << ", " << std::get<2>(it->second)
        << ") with cache on vs ("
        << static_cast<int>(std::get<0>(expected)) << ", "
        << std::get<1>(expected) << ", " << std::get<2>(expected)
        << ") with cache off";
  }
}

struct Params {
  std::uint64_t seed;
  queue::QueuePolicy policy;
};

class QueueDifferential : public ::testing::TestWithParam<Params> {};

// Random online workload (Poisson arrivals, quantized walltimes, a few
// impossible jobs mixed in) replayed through both worlds.
TEST_P(QueueDifferential, RandomWorkloadPlacementsIdentical) {
  sim::TraceConfig cfg;
  cfg.job_count = 60;
  cfg.max_nodes = 8;  // system has 8 nodes
  cfg.min_duration = 60;
  cfg.max_duration = 2 * 3600;
  cfg.duration_quantum = 900;
  util::Rng rng(GetParam().seed);
  auto trace = sim::generate_trace(cfg, rng);
  util::Rng arrivals(GetParam().seed ^ 0x9e3779b97f4a7c15ull);
  sim::stamp_poisson_arrivals(trace, 120.0, arrivals);
  // A couple of unsatisfiable requests exercise the rejection path.
  trace.push_back({16, 600, trace.back().arrival / 2});
  trace.push_back({16, 600, trace.back().arrival});

  World off(GetParam().policy, /*cache=*/false);
  World on(GetParam().policy, /*cache=*/true);
  const auto r_off = sim::replay_trace(*off.q, trace, 4);
  const auto r_on = sim::replay_trace(*on.q, trace, 4);
  ASSERT_TRUE(r_off) << r_off.error().message;
  ASSERT_TRUE(r_on) << r_on.error().message;
  ASSERT_EQ(r_off->ids, r_on->ids);
  EXPECT_EQ(r_off->end_time, r_on->end_time);
  expect_identical(snapshot(*off.q, r_off->ids), snapshot(*on.q, r_on->ids));
  // The runs must be differential in work, not just identical in outcome:
  // the cache-off world re-matches what the cache-on world skips.
  EXPECT_EQ(off.q->stats().match_skipped, 0u);
  EXPECT_GE(off.q->stats().match_calls, on.q->stats().match_calls);
}

INSTANTIATE_TEST_SUITE_P(
    Storm, QueueDifferential,
    ::testing::Values(Params{1, queue::QueuePolicy::fcfs},
                      Params{2, queue::QueuePolicy::easy_backfill},
                      Params{3, queue::QueuePolicy::easy_backfill},
                      Params{4, queue::QueuePolicy::conservative_backfill},
                      Params{5, queue::QueuePolicy::conservative_backfill}));

// Drain/down/grow/shrink scenario replay: each dynamic event class must
// invalidate blocked signatures, otherwise a requeued or newly-feasible
// job stays stuck with the cache on and the snapshots diverge.
TEST(QueueDifferentialScenario, DrainGrowShrinkPlacementsIdentical) {
  const char* scenario_text =
      "4 1000\n"          // fills rack0 at t=0
      "4 1000\n"          // fills rack1 at t=0
      "4 2000 100\n"      // queued behind both
      "4 500 150\n"       // repeated blocked shape: cache skip fodder
      "4 500 160\n"
      "@ 200 status /cluster0/rack0/node0 drained\n"
      "@ 300 status /cluster0/rack1/node4 down requeue\n"
      "@ 400 status /cluster0/rack1/node4 up\n"
      "@ 500 grow /cluster0 rack.grug\n"
      "@ 2600 status /cluster0/rack0/node0 up\n"
      "@ 2800 shrink /cluster0/rack2 requeue\n";
  auto scenario = sim::parse_scenario(scenario_text);
  ASSERT_TRUE(scenario) << scenario.error().message;
  const sim::RecipeResolver resolver =
      [](const std::string& ref) -> util::Expected<std::string> {
    if (ref == "rack.grug") return std::string(kRackFragment);
    return util::Error{util::Errc::not_found, "no recipe '" + ref + "'"};
  };

  // EASY backfill: non-head jobs probe with plain allocate, whose
  // failures are what the cache records — conservative would reserve
  // everything and never populate it.
  World off(queue::QueuePolicy::easy_backfill, /*cache=*/false);
  World on(queue::QueuePolicy::easy_backfill, /*cache=*/true);
  const auto r_off =
      sim::replay_scenario(*off.q, *off.dyn, *scenario, 4, resolver);
  const auto r_on =
      sim::replay_scenario(*on.q, *on.dyn, *scenario, 4, resolver);
  ASSERT_TRUE(r_off) << r_off.error().message;
  ASSERT_TRUE(r_on) << r_on.error().message;
  ASSERT_EQ(r_off->ids, r_on->ids);
  EXPECT_EQ(r_off->evicted, r_on->evicted);
  EXPECT_EQ(r_off->replanned, r_on->replanned);
  EXPECT_EQ(r_off->end_time, r_on->end_time);
  expect_identical(snapshot(*off.q, r_off->ids), snapshot(*on.q, r_on->ids));
  ASSERT_TRUE(off.q->run_to_completion());
  ASSERT_TRUE(on.q->run_to_completion());
  expect_identical(snapshot(*off.q, r_off->ids), snapshot(*on.q, r_on->ids));
  // Dynamic events must have invalidated the cache at least once, or the
  // scenario never exercised the interesting path.
  EXPECT_GE(on.q->stats().cache_invalidations, 1u);
}

}  // namespace
}  // namespace fluxion
