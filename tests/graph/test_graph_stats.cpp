#include "graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include "grug/grug.hpp"

namespace fluxion::graph {
namespace {

TEST(GraphStats, CountsSmallSystem) {
  ResourceGraph g(0, 1000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=3\n"
      "      core count=4\n      memory count=2 size=16\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  const GraphStats s = compute_stats(g, *root);
  EXPECT_EQ(s.vertices, 1u + 2 + 6 + 24 + 12);
  EXPECT_EQ(s.edges, s.vertices - 1);  // a tree
  EXPECT_EQ(s.depth, 4u);
  EXPECT_EQ(s.leaves, 24u + 12u);
  EXPECT_EQ(s.type_vertices.at("core"), 24u);
  EXPECT_EQ(s.type_units.at("core"), 24);
  EXPECT_EQ(s.type_vertices.at("memory"), 12u);
  EXPECT_EQ(s.type_units.at("memory"), 12 * 16);
}

TEST(GraphStats, SubtreeScoped) {
  ResourceGraph g(0, 1000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=3\n"
      "      core count=4\n");
  ASSERT_TRUE(recipe);
  ASSERT_TRUE(grug::build(g, *recipe));
  const auto racks = g.vertices_of_type(*g.find_type("rack"));
  const GraphStats s = compute_stats(g, racks[0]);
  EXPECT_EQ(s.vertices, 1u + 3 + 12);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_EQ(s.type_vertices.count("cluster"), 0u);
}

TEST(GraphStats, IgnoresDetachedSubtrees) {
  ResourceGraph g(0, 1000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=3\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  const auto racks = g.vertices_of_type(*g.find_type("rack"));
  ASSERT_TRUE(g.detach_subtree(racks[1]));
  const GraphStats s = compute_stats(g, *root);
  EXPECT_EQ(s.vertices, 1u + 1 + 3);
  EXPECT_EQ(s.type_vertices.at("node"), 3u);
}

TEST(GraphStats, RenderShowsUnitsWhenPooled) {
  ResourceGraph g(0, 1000);
  auto recipe = grug::parse("cluster count=1\n  memory count=2 size=64\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  const std::string out = render_stats(compute_stats(g, *root));
  EXPECT_NE(out.find("memory: 2 vertices (128 units)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("cluster: 1 vertices\n"), std::string::npos) << out;
}

TEST(GraphStats, CountsEdgesPerSubsystem) {
  ResourceGraph g(0, 1000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=2\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  const auto power = g.intern_subsystem("power");
  const auto feeds = g.intern_relation("feeds");
  const auto racks = g.vertices_of_type(*g.find_type("rack"));
  const auto nodes = g.vertices_of_type(*g.find_type("node"));
  ASSERT_TRUE(g.add_edge(*root, racks[0], power, feeds));
  ASSERT_TRUE(g.add_edge(racks[0], nodes[0], power, feeds));
  const GraphStats s = compute_stats(g, *root);
  // 7-vertex containment tree: 6 forward containment edges.
  EXPECT_EQ(s.subsystem_edges.at("containment"), 6u);
  EXPECT_EQ(s.subsystem_edges.at("power"), 2u);
  const std::string out = render_stats(s);
  EXPECT_NE(out.find("subsystem containment: 6 edges"), std::string::npos)
      << out;
  EXPECT_NE(out.find("subsystem power: 2 edges"), std::string::npos) << out;
}

TEST(GraphStats, SubsystemEdgesSkipDetachedTargets) {
  ResourceGraph g(0, 1000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=2\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  const auto power = g.intern_subsystem("power");
  const auto feeds = g.intern_relation("feeds");
  const auto racks = g.vertices_of_type(*g.find_type("rack"));
  ASSERT_TRUE(g.add_edge(*root, racks[1], power, feeds));
  ASSERT_TRUE(g.detach_subtree(racks[1]));
  const GraphStats s = compute_stats(g, *root);
  EXPECT_EQ(s.subsystem_edges.count("power"), 0u);
}

TEST(GraphStats, StatusCountsFollowFlipsGrowAndShrink) {
  ResourceGraph g(0, 1000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=2\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  const auto nodes = g.vertices_of_type(*g.find_type("node"));
  ASSERT_TRUE(g.set_status(nodes[0], ResourceStatus::drained));
  ASSERT_TRUE(g.set_status(*g.find_by_path("/cluster0/rack1"),
                           ResourceStatus::down));
  GraphStats s = compute_stats(g, *root);
  EXPECT_EQ(s.vertices, g.live_vertex_count());
  EXPECT_EQ(s.status_vertices[static_cast<std::size_t>(ResourceStatus::up)],
            3u);  // cluster, rack0, node1
  EXPECT_EQ(
      s.status_vertices[static_cast<std::size_t>(ResourceStatus::drained)],
      1u);
  EXPECT_EQ(s.status_vertices[static_cast<std::size_t>(ResourceStatus::down)],
            3u);  // rack1 + its two nodes
  const std::string out = render_stats(s);
  EXPECT_NE(out.find("status: up=3 down=3 drained=1"), std::string::npos)
      << out;

  // The walk agrees with the graph's own counters after detach, too.
  ASSERT_TRUE(g.set_status(*g.find_by_path("/cluster0/rack1"),
                           ResourceStatus::up));
  ASSERT_TRUE(g.detach_subtree(*g.find_by_path("/cluster0/rack1")));
  s = compute_stats(g, *root);
  EXPECT_EQ(s.vertices, g.live_vertex_count());
  for (std::size_t i = 0; i < kStatusCount; ++i) {
    EXPECT_EQ(s.status_vertices[i],
              g.status_count(static_cast<ResourceStatus>(i)));
  }
}

TEST(GraphStats, DeadRootYieldsEmptyStats) {
  ResourceGraph g(0, 1000);
  const auto v = g.add_vertex("cluster", "cluster", 0, 1);
  ASSERT_TRUE(g.detach_subtree(v));
  const GraphStats s = compute_stats(g, v);
  EXPECT_EQ(s.vertices, 0u);
}

}  // namespace
}  // namespace fluxion::graph
