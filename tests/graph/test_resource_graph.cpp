#include "graph/resource_graph.hpp"

#include <gtest/gtest.h>

namespace fluxion::graph {
namespace {

using util::Errc;

/// Small fixture: cluster -> 2 racks -> 2 nodes each -> 4 cores + 1 gpu.
class SmallCluster : public ::testing::Test {
 protected:
  SmallCluster() : g(0, 1000) {
    cluster = g.add_vertex("cluster", "cluster", 0, 1);
    core_t = g.intern_type("core");
    gpu_t = g.intern_type("gpu");
    node_t = g.intern_type("node");
    for (int r = 0; r < 2; ++r) {
      const VertexId rack = g.add_vertex("rack", "rack", r, 1);
      EXPECT_TRUE(g.add_containment(cluster, rack));
      racks.push_back(rack);
      for (int n = 0; n < 2; ++n) {
        const VertexId node = g.add_vertex("node", "node", r * 2 + n, 1);
        EXPECT_TRUE(g.add_containment(rack, node));
        nodes.push_back(node);
        for (int c = 0; c < 4; ++c) {
          const VertexId core = g.add_vertex("core", "core", c, 1);
          EXPECT_TRUE(g.add_containment(node, core));
        }
        const VertexId gpu = g.add_vertex("gpu", "gpu", 0, 1);
        EXPECT_TRUE(g.add_containment(node, gpu));
      }
    }
  }
  ResourceGraph g;
  VertexId cluster;
  util::InternId core_t, gpu_t, node_t;
  std::vector<VertexId> racks, nodes;
};

TEST_F(SmallCluster, CountsAndPaths) {
  EXPECT_EQ(g.vertex_count(), 1u + 2u + 4u + 16u + 4u);
  EXPECT_EQ(g.live_vertex_count(), g.vertex_count());
  EXPECT_EQ(g.vertex(nodes[0]).path, "/cluster0/rack0/node0");
  EXPECT_EQ(g.find_by_path("/cluster0/rack1/node3"), nodes[3]);
  EXPECT_EQ(g.find_by_path("/cluster0/rack9"), std::nullopt);
  EXPECT_TRUE(g.validate());
}

TEST_F(SmallCluster, ContainmentChildren) {
  EXPECT_EQ(g.containment_children(cluster).size(), 2u);
  EXPECT_EQ(g.containment_children(racks[0]).size(), 2u);
  EXPECT_EQ(g.containment_children(nodes[0]).size(), 5u);  // 4 cores + gpu
}

TEST_F(SmallCluster, ReverseInEdgesExist) {
  const auto parents =
      g.children(nodes[0], g.containment(), g.in_rel());
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], racks[0]);
}

TEST_F(SmallCluster, VerticesOfType) {
  EXPECT_EQ(g.vertices_of_type(node_t).size(), 4u);
  EXPECT_EQ(g.vertices_of_type(core_t).size(), 16u);
  EXPECT_EQ(g.vertices_of_type(g.intern_type("pfs")).size(), 0u);
}

TEST_F(SmallCluster, SubtreeCounts) {
  const auto counts = g.subtree_counts(racks[0]);
  EXPECT_EQ(counts.at(core_t), 8);
  EXPECT_EQ(counts.at(gpu_t), 2);
  EXPECT_EQ(counts.at(node_t), 2);
  const auto all = g.subtree_counts(cluster);
  EXPECT_EQ(all.at(core_t), 16);
}

TEST_F(SmallCluster, PerVertexPlannersInitialized) {
  const Vertex& n = g.vertex(nodes[0]);
  ASSERT_NE(n.schedule, nullptr);
  EXPECT_EQ(n.schedule->total(), 1);
  EXPECT_EQ(*n.schedule->avail_at(0), 1);
  EXPECT_EQ(n.x_checker->total(), kSharedUseMax);
}

TEST_F(SmallCluster, InstallFilterTracksSubtreeTotals) {
  ASSERT_TRUE(g.install_filter(racks[0], {core_t, gpu_t}));
  const auto* f = g.vertex(racks[0]).filter.get();
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->planner_at(*f->index_of("core")).total(), 8);
  EXPECT_EQ(f->planner_at(*f->index_of("gpu")).total(), 2);
  EXPECT_TRUE(g.validate());
}

TEST_F(SmallCluster, InstallFilterTwiceFails) {
  ASSERT_TRUE(g.install_filter(racks[0], {core_t}));
  EXPECT_EQ(g.install_filter(racks[0], {core_t}).error().code, Errc::exists);
}

TEST_F(SmallCluster, FilterForAbsentTypeHasZeroTotal) {
  const auto pfs = g.intern_type("pfs");
  ASSERT_TRUE(g.install_filter(racks[0], {pfs}));
  const auto* f = g.vertex(racks[0]).filter.get();
  EXPECT_EQ(f->planner_at(*f->index_of("pfs")).total(), 0);
}

TEST_F(SmallCluster, DetachSubtreeRemovesCapacity) {
  ASSERT_TRUE(g.install_filter(cluster, {core_t}));
  ASSERT_TRUE(g.detach_subtree(racks[1]));
  // rack + 2 nodes + 8 cores + 2 gpus = 13 vertices detached
  EXPECT_EQ(g.live_vertex_count(), g.vertex_count() - 13);
  EXPECT_EQ(g.containment_children(cluster).size(), 1u);
  EXPECT_EQ(g.find_by_path("/cluster0/rack1"), std::nullopt);
  const auto* f = g.vertex(cluster).filter.get();
  EXPECT_EQ(f->planner_at(*f->index_of("core")).total(), 8);
  EXPECT_TRUE(g.validate());
}

TEST_F(SmallCluster, DetachBusySubtreeFails) {
  ASSERT_TRUE(g.vertex(nodes[2]).schedule->add_span(0, 10, 1));
  EXPECT_EQ(g.detach_subtree(racks[1]).error().code, Errc::resource_busy);
  EXPECT_EQ(g.live_vertex_count(), g.vertex_count());
}

TEST_F(SmallCluster, AttachSubtreeGrowsCapacity) {
  ASSERT_TRUE(g.install_filter(cluster, {core_t}));
  // Build a new rack detached, then attach it.
  const VertexId rack = g.add_vertex("rack", "rack", 2, 1);
  const VertexId node = g.add_vertex("node", "node", 4, 1);
  ASSERT_TRUE(g.add_containment(rack, node));
  for (int c = 0; c < 4; ++c) {
    const VertexId core = g.add_vertex("core", "core", c, 1);
    ASSERT_TRUE(g.add_containment(node, core));
  }
  ASSERT_TRUE(g.attach_subtree(cluster, rack));
  EXPECT_EQ(g.vertex(node).path, "/cluster0/rack2/node4");
  const auto* f = g.vertex(cluster).filter.get();
  EXPECT_EQ(f->planner_at(*f->index_of("core")).total(), 20);
  EXPECT_TRUE(g.validate());
}

TEST_F(SmallCluster, AttachAlreadyPlacedFails) {
  EXPECT_EQ(g.attach_subtree(cluster, racks[0]).error().code, Errc::exists);
}

TEST_F(SmallCluster, SubsystemFilter) {
  EXPECT_TRUE(g.subsystem_visible(g.containment()));
  const auto power = g.intern_subsystem("power");
  EXPECT_FALSE(g.subsystem_visible(power));
  g.set_subsystem_filter({power});
  EXPECT_TRUE(g.subsystem_visible(power));
  EXPECT_FALSE(g.subsystem_visible(g.containment()));
  g.set_subsystem_filter({});
  EXPECT_TRUE(g.subsystem_visible(g.containment()));
}

TEST_F(SmallCluster, MultiSubsystemEdges) {
  // Rabbit-style storage: one vertex with edges from both rack and
  // cluster in a "storage" subsystem (paper §5.1).
  const auto storage = g.intern_subsystem("storage");
  const auto conduit = g.intern_relation("conduit-of");
  const VertexId rabbit = g.add_vertex("rabbit", "rabbit", 0, 1);
  ASSERT_TRUE(g.add_containment(racks[0], rabbit));
  ASSERT_TRUE(g.add_edge(cluster, rabbit, storage, conduit));
  EXPECT_EQ(g.children(cluster, storage, conduit).size(), 1u);
  EXPECT_EQ(g.children(cluster, g.containment(), g.contains_rel()).size(),
            2u);
}

TEST_F(SmallCluster, EdgeAccounting) {
  // Each containment link is 2 directed edges (contains + in).
  EXPECT_EQ(g.edge_count(), 2 * (g.vertex_count() - 1));
  const auto power = g.intern_subsystem("power");
  const auto feeds = g.intern_relation("feeds");
  ASSERT_TRUE(g.add_edge(cluster, racks[0], power, feeds));
  EXPECT_EQ(g.edge_count(), 2 * (g.vertex_count() - 1) + 1);
  // Unknown relation/subsystem queries return nothing.
  EXPECT_TRUE(g.children(cluster, power, g.contains_rel()).empty());
  EXPECT_TRUE(g.children(cluster, g.containment(), feeds).empty());
  EXPECT_EQ(g.children(cluster, power, feeds).size(), 1u);
}

TEST_F(SmallCluster, OutEdgesExposeAllSubsystems) {
  const auto power = g.intern_subsystem("power");
  ASSERT_TRUE(g.add_edge(nodes[0], nodes[1], power,
                         g.intern_relation("feeds")));
  std::size_t power_edges = 0;
  for (const Edge& e : g.out_edges(nodes[0])) {
    if (e.subsystem == power) ++power_edges;
  }
  EXPECT_EQ(power_edges, 1u);
}

TEST_F(SmallCluster, TypeInternIsStable) {
  const auto a = g.intern_type("core");
  const auto b = g.intern_type("core");
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.type_name(a), "core");
  EXPECT_EQ(g.find_type("never-seen"), std::nullopt);
}

TEST(ResourceGraph, PoolSizesRespectedInPlanner) {
  ResourceGraph g(0, 100);
  const VertexId mem = g.add_vertex("memory", "memory", 0, 64);
  EXPECT_EQ(g.vertex(mem).schedule->total(), 64);
  EXPECT_TRUE(g.vertex(mem).schedule->avail_during(0, 10, 64));
}

TEST(ResourceGraph, EdgeToUnknownVertexFails) {
  ResourceGraph g(0, 100);
  const VertexId a = g.add_vertex("node", "node", 0, 1);
  EXPECT_EQ(g.add_edge(a, 99, g.containment(), g.contains_rel()).error().code,
            Errc::not_found);
}

TEST(ResourceGraph, UniqIdsAreSequential) {
  ResourceGraph g(0, 100);
  const VertexId a = g.add_vertex("node", "node", 0, 1);
  const VertexId b = g.add_vertex("node", "node", 1, 1);
  EXPECT_EQ(g.vertex(a).uniq_id + 1, g.vertex(b).uniq_id);
}

}  // namespace
}  // namespace fluxion::graph
