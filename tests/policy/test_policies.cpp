#include "policy/policies.hpp"

#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"

namespace fluxion::policy {
namespace {

using graph::VertexId;
using jobspec::make;
using jobspec::slot;
using jobspec::xres;
using traverser::MatchOp;
using traverser::Traverser;

class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture() : g(0, 100000) {
    auto recipe = grug::parse(
        "cluster count=1\n  node count=8\n    core count=4\n");
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    nodes = g.vertices_of_type(*g.find_type("node"));
  }

  /// Which node did a 1-node exclusive job land on?
  VertexId first_node_of(const traverser::MatchResult& r) {
    for (const auto& ru : r.resources) {
      if (g.type_name(g.vertex(ru.vertex).type) == "node") return ru.vertex;
    }
    return graph::kInvalidVertex;
  }

  graph::ResourceGraph g;
  VertexId root = graph::kInvalidVertex;
  std::vector<VertexId> nodes;
};

TEST_F(PolicyFixture, LowIdPicksLowest) {
  LowIdPolicy pol;
  Traverser trav(g, root, pol);
  auto js = make({slot(1, {xres("node", 1)})}, 10);
  ASSERT_TRUE(js);
  auto r = trav.match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(first_node_of(*r), nodes.front());
}

TEST_F(PolicyFixture, HighIdPicksHighest) {
  HighIdPolicy pol;
  Traverser trav(g, root, pol);
  auto js = make({slot(1, {xres("node", 1)})}, 10);
  ASSERT_TRUE(js);
  auto r = trav.match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(first_node_of(*r), nodes.back());
}

TEST_F(PolicyFixture, OrderingIsStableAndComplete) {
  LowIdPolicy low;
  HighIdPolicy high;
  std::vector<VertexId> c1 = nodes, c2 = nodes;
  low.order_candidates(g, c1);
  high.order_candidates(g, c2);
  std::reverse(c2.begin(), c2.end());
  EXPECT_EQ(c1, c2);
}

TEST_F(PolicyFixture, PerfClassOfUnsetIsMinusOne) {
  EXPECT_EQ(perf_class_of(g, nodes[0]), -1);
  g.vertex(nodes[0]).properties["perf_class"] = "3";
  EXPECT_EQ(perf_class_of(g, nodes[0]), 3);
  g.vertex(nodes[1]).properties["perf_class"] = "bogus";
  EXPECT_EQ(perf_class_of(g, nodes[1]), -1);
}

class VarAwareFixture : public PolicyFixture {
 protected:
  VarAwareFixture() {
    // Classes: nodes 0-1 -> 1, nodes 2-5 -> 2, nodes 6-7 -> 3.
    const int classes[] = {1, 1, 2, 2, 2, 2, 3, 3};
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      g.vertex(nodes[i]).properties["perf_class"] =
          std::to_string(classes[i]);
    }
  }
};

TEST_F(VarAwareFixture, SingleClassWindowChosen) {
  VariationAwarePolicy pol;
  std::vector<VertexId> c = nodes;
  pol.plan_selection(g, c, 4);
  // The only 4-wide zero-spread window is class 2 (nodes 2..5).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(perf_class_of(g, c[static_cast<std::size_t>(i)]), 2) << i;
  }
}

TEST_F(VarAwareFixture, PrefersFastestZeroSpreadWindow) {
  VariationAwarePolicy pol;
  std::vector<VertexId> c = nodes;
  pol.plan_selection(g, c, 2);
  // Several zero-spread 2-windows exist; the fastest class wins.
  EXPECT_EQ(perf_class_of(g, c[0]), 1);
  EXPECT_EQ(perf_class_of(g, c[1]), 1);
}

TEST_F(VarAwareFixture, MinimalSpreadWhenNoSingleClassFits) {
  VariationAwarePolicy pol;
  std::vector<VertexId> c = nodes;
  pol.plan_selection(g, c, 6);
  // Best 6-window spans classes 1-2 or 2-3 (spread 1), never 1-3.
  int lo = INT_MAX, hi = INT_MIN;
  for (int i = 0; i < 6; ++i) {
    const int pc = perf_class_of(g, c[static_cast<std::size_t>(i)]);
    lo = std::min(lo, pc);
    hi = std::max(hi, pc);
  }
  EXPECT_EQ(hi - lo, 1);
}

TEST_F(VarAwareFixture, EndToEndZeroFomAllocation) {
  VariationAwarePolicy pol;
  Traverser trav(g, root, pol);
  auto js = make({slot(1, {xres("node", 4)})}, 10);
  ASSERT_TRUE(js);
  auto r = trav.match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  int lo = INT_MAX, hi = INT_MIN;
  for (const auto& ru : r->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) != "node") continue;
    const int pc = perf_class_of(g, ru.vertex);
    lo = std::min(lo, pc);
    hi = std::max(hi, pc);
  }
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 2);  // fom == 0
}

TEST_F(VarAwareFixture, NeededLargerThanCandidatesKeepsClassOrder) {
  VariationAwarePolicy pol;
  std::vector<VertexId> c = nodes;
  pol.plan_selection(g, c, 100);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LE(perf_class_of(g, c[i - 1]), perf_class_of(g, c[i]));
  }
}

TEST_F(PolicyFixture, CustomPolicyOrdersByScore) {
  // Prefer even-numbered nodes, then odd, each group by id.
  CustomPolicy pol("even-first", [](const graph::ResourceGraph& g,
                                    graph::VertexId v) {
    return static_cast<double>(g.vertex(v).uniq_id % 2);
  });
  EXPECT_EQ(pol.name(), "even-first");
  std::vector<VertexId> c = nodes;
  pol.order_candidates(g, c);
  for (std::size_t i = 0; i + 1 < c.size() / 2; ++i) {
    EXPECT_EQ(g.vertex(c[i]).uniq_id % 2, 0) << i;
  }
  // End-to-end: the matcher uses the custom order.
  Traverser trav(g, root, pol);
  auto js = make({slot(1, {xres("node", 1)})}, 10);
  ASSERT_TRUE(js);
  auto r = trav.match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(first_node_of(*r), c[0]);
}

TEST_F(PolicyFixture, CustomPolicyConstantScoreFallsBackToId) {
  CustomPolicy pol("flat", [](const graph::ResourceGraph&, graph::VertexId) {
    return 0.0;
  });
  std::vector<VertexId> c = nodes;
  std::reverse(c.begin(), c.end());
  pol.order_candidates(g, c);
  EXPECT_EQ(c, nodes);
}

TEST(PolicyFactory, CreatesAllKnownPolicies) {
  for (const char* name :
       {"low-id", "first", "high-id", "locality", "variation-aware"}) {
    auto p = create(name);
    ASSERT_TRUE(p) << name;
    EXPECT_NE((*p).get(), nullptr);
  }
  EXPECT_FALSE(create("nope"));
}

TEST(PolicyFactory, NamesRoundTrip) {
  EXPECT_EQ((*create("low-id"))->name(), "low-id");
  EXPECT_EQ((*create("high-id"))->name(), "high-id");
  EXPECT_EQ((*create("variation-aware"))->name(), "variation-aware");
}

}  // namespace
}  // namespace fluxion::policy
