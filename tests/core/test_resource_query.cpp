// ResourceQuery facade + end-to-end integration tests across all modules.
#include "core/resource_query.hpp"

#include <gtest/gtest.h>

#include "grug/recipes.hpp"
#include "queue/job_queue.hpp"
#include "sim/perf_classes.hpp"
#include "sim/workload.hpp"
#include "writers/jgf.hpp"

namespace fluxion::core {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;
using util::Errc;

constexpr const char* kRecipe = R"(
filters core memory
filter-at cluster rack
cluster count=1
  rack count=2
    node count=4
      core count=8
      memory count=4 size=16
)";

TEST(ResourceQuery, CreateFromText) {
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq) << rq.error().message;
  EXPECT_EQ((*rq)->graph().live_vertex_count(), 1u + 2 + 8 + 8 * 12);
  EXPECT_EQ((*rq)->policy().name(), "low-id");
}

TEST(ResourceQuery, CreateRejectsBadRecipeAndPolicy) {
  EXPECT_FALSE(ResourceQuery::create_from_text("nonsense recipe ##"));
  Options opt;
  opt.policy = "does-not-exist";
  EXPECT_FALSE(ResourceQuery::create_from_text(kRecipe, opt));
}

TEST(ResourceQuery, CreateFromJgfValidatesFilterConfiguration) {
  // Build a small graph and serialize it so the JGF is always in sync
  // with the recipe grammar.
  graph::ResourceGraph g(0, 100000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=2\n"
      "      core count=4\n");
  ASSERT_TRUE(recipe);
  ASSERT_TRUE(grug::build(g, *recipe));
  const std::string jgf = writers::graph_to_jgf(g).pretty();

  // Matched configuration: filters install at every cluster vertex.
  auto ok = ResourceQuery::create_from_jgf(jgf, {}, {"node", "core"},
                                           {"cluster"});
  ASSERT_TRUE(ok) << ok.error().message;
  EXPECT_NE((*ok)->graph()
                .vertex(*(*ok)->graph().find_by_path("/cluster0"))
                .filter,
            nullptr);

  // An unknown filter-at type used to be skipped silently (no pruning at
  // all); it must now be an error that names the offender.
  auto bad_at = ResourceQuery::create_from_jgf(jgf, {}, {"node", "core"},
                                               {"chassis"});
  ASSERT_FALSE(bad_at);
  EXPECT_EQ(bad_at.error().code, Errc::invalid_argument);
  EXPECT_NE(bad_at.error().message.find("chassis"), std::string::npos);

  // Half-configured pruning (one list empty, the other not) is rejected
  // instead of silently disabling the filters.
  auto no_at = ResourceQuery::create_from_jgf(jgf, {}, {"node", "core"}, {});
  ASSERT_FALSE(no_at);
  EXPECT_EQ(no_at.error().code, Errc::invalid_argument);
  auto no_types = ResourceQuery::create_from_jgf(jgf, {}, {}, {"cluster"});
  ASSERT_FALSE(no_types);
  EXPECT_EQ(no_types.error().code, Errc::invalid_argument);

  // Fully empty stays valid: pruning off by explicit choice.
  EXPECT_TRUE(ResourceQuery::create_from_jgf(jgf, {}, {}, {}));
}

TEST(ResourceQuery, MatchAllocateFromYaml) {
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq);
  const char* yaml =
      "version: 1\n"
      "resources:\n"
      "  - type: node\n"
      "    count: 1\n"
      "    with:\n"
      "      - type: slot\n"
      "        count: 1\n"
      "        with:\n"
      "          - type: core\n"
      "            count: 4\n"
      "          - type: memory\n"
      "            count: 32\n"
      "attributes:\n"
      "  system:\n"
      "    duration: 600\n";
  auto r = (*rq)->match_allocate_yaml(yaml);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_FALSE(r->reserved);
  const std::string rendered = (*rq)->render(*r);
  EXPECT_NE(rendered.find("core"), std::string::npos);
  EXPECT_NE(rendered.find("/cluster0/rack0/node0"), std::string::npos);
}

TEST(ResourceQuery, RenderMarksExclusiveAndReserved) {
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq);
  auto fill = make({slot(1, {xres("node", 8)})}, 100);
  ASSERT_TRUE(fill);
  auto r1 = (*rq)->match_allocate(*fill);
  ASSERT_TRUE(r1);
  auto r2 = (*rq)->match_allocate_orelse_reserve(*fill);
  ASSERT_TRUE(r2);
  EXPECT_TRUE(r2->reserved);
  const std::string s = (*rq)->render(*r2);
  EXPECT_NE(s.find("(reserved)"), std::string::npos);
  EXPECT_NE(s.find("]*"), std::string::npos);
}

TEST(ResourceQuery, CancelFreesResources) {
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq);
  auto fill = make({slot(1, {xres("node", 8)})}, 100);
  ASSERT_TRUE(fill);
  auto r = (*rq)->match_allocate(*fill);
  ASSERT_TRUE(r);
  EXPECT_FALSE((*rq)->match_allocate(*fill));
  ASSERT_TRUE((*rq)->cancel(r->job));
  EXPECT_TRUE((*rq)->match_allocate(*fill));
}

TEST(ResourceQuery, SatisfiabilityDoesNotCommit) {
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq);
  auto js = make({slot(1, {xres("node", 8)})}, 100);
  ASSERT_TRUE(js);
  EXPECT_TRUE((*rq)->satisfiability(*js));
  auto too_big = make({slot(1, {xres("node", 9)})}, 100);
  ASSERT_TRUE(too_big);
  auto sat = (*rq)->satisfiability(*too_big);
  ASSERT_FALSE(sat);
  EXPECT_EQ(sat.error().code, Errc::unsatisfiable);
  EXPECT_EQ((*rq)->traverser().job_count(), 0u);
}

TEST(Integration, LodRecipesMatchUntilFull) {
  // Miniature §6.1: allocate "10 cores + 8 memory per node" jobs until the
  // system is full; every LOD variant must admit the same number of jobs
  // because capacity is LOD-invariant.
  const int racks = 2, nodes = 3;
  std::vector<grug::Recipe> variants = {
      grug::recipes::high_lod(true, racks, nodes),
      grug::recipes::med_lod(true, racks, nodes),
      grug::recipes::low2_lod(true, racks, nodes),
      grug::recipes::low_lod(true, racks * nodes),
  };
  auto js = make({res("node", 1, {slot(1, {res("core", 10),
                                           res("memory", 8)})})},
                 1000);
  ASSERT_TRUE(js);
  std::vector<int> admitted;
  for (const auto& recipe : variants) {
    auto rq = ResourceQuery::create(recipe);
    ASSERT_TRUE(rq);
    int count = 0;
    while ((*rq)->match_allocate(*js)) ++count;
    admitted.push_back(count);
    EXPECT_TRUE((*rq)->traverser().verify_filters());
  }
  // 40 cores/node -> 4 jobs per node -> 24 jobs, at every LOD.
  for (int count : admitted) EXPECT_EQ(count, 4 * racks * nodes);
}

TEST(Integration, VariationAwareEndToEnd) {
  // Quartz-mini with classes; variation-aware jobs should have fom == 0
  // wherever a single class can host them.
  Options opt;
  opt.policy = "variation-aware";
  auto rq = ResourceQuery::create(grug::recipes::quartz(true, 2, 10, 4), opt);
  ASSERT_TRUE(rq) << rq.error().message;
  util::Rng rng(5);
  const auto classes =
      sim::classes_from_tnorm(sim::synthesize_tnorm(20, rng));
  ASSERT_TRUE(sim::apply_performance_classes((*rq)->graph(), classes));
  auto js = sim::trace_jobspec({3, 100}, 4);
  ASSERT_TRUE(js);
  auto r = (*rq)->match_allocate(*js);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(sim::figure_of_merit((*rq)->graph(), r->resources), 0);
}

TEST(Integration, QueueOnTopOfResourceQuery) {
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq);
  queue::JobQueue q((*rq)->traverser(),
                    queue::QueuePolicy::conservative_backfill);
  util::Rng rng(17);
  sim::TraceConfig cfg;
  cfg.job_count = 30;
  cfg.max_nodes = 8;
  cfg.min_duration = 10;
  cfg.max_duration = 100;
  for (const auto& tj : sim::generate_trace(cfg, rng)) {
    auto js = sim::trace_jobspec(tj, 8);
    ASSERT_TRUE(js);
    q.submit(*js);
  }
  q.run_to_completion();
  EXPECT_EQ(q.stats().completed + q.stats().rejected, 30u);
  EXPECT_EQ(q.stats().rejected, 0u);  // max 8 nodes requested, 8 exist
  EXPECT_TRUE((*rq)->traverser().verify_filters());
}

TEST(Integration, ElasticGrowThenSchedule) {
  // §5.5: attach a new rack at runtime and schedule onto it.
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq);
  auto& g = (*rq)->graph();
  auto fill = make({slot(1, {xres("node", 8)})}, 1000);
  ASSERT_TRUE(fill);
  ASSERT_TRUE((*rq)->match_allocate(*fill));
  auto one = make({slot(1, {xres("node", 1)})}, 10);
  ASSERT_TRUE(one);
  EXPECT_FALSE((*rq)->match_allocate(*one));
  // Grow: new rack with 2 nodes x 8 cores.
  const auto rack = g.add_vertex("rack", "rack", 2, 1);
  for (int n = 0; n < 2; ++n) {
    const auto node = g.add_vertex("node", "node", 8 + n, 1);
    ASSERT_TRUE(g.add_containment(rack, node));
    for (int c = 0; c < 8; ++c) {
      ASSERT_TRUE(g.add_containment(node,
                                    g.add_vertex("core", "core", c, 1)));
    }
  }
  ASSERT_TRUE(g.attach_subtree((*rq)->root(), rack));
  EXPECT_TRUE((*rq)->match_allocate(*one));
  EXPECT_TRUE(g.validate());
}

TEST(Integration, ElasticShrinkBlocksWhenBusy) {
  auto rq = ResourceQuery::create_from_text(kRecipe);
  ASSERT_TRUE(rq);
  auto& g = (*rq)->graph();
  auto js = make({res("node", 1, {slot(1, {res("core", 1)})})}, 100);
  ASSERT_TRUE(js);
  auto r = (*rq)->match_allocate(*js);
  ASSERT_TRUE(r);
  const auto racks = g.vertices_of_type(*g.find_type("rack"));
  // rack0 hosts the job (low-id): busy. rack1 detaches fine.
  EXPECT_EQ(g.detach_subtree(racks[0]).error().code, Errc::resource_busy);
  ASSERT_TRUE(g.detach_subtree(racks[1]));
  EXPECT_TRUE(g.validate());
  // Capacity halved: an 8-node job is now unsatisfiable.
  auto big = make({slot(1, {xres("node", 8)})}, 10);
  ASSERT_TRUE(big);
  auto sat = (*rq)->satisfiability(*big);
  EXPECT_FALSE(sat);
}

}  // namespace
}  // namespace fluxion::core
