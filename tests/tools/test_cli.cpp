// Integration test for the resource-query CLI: drives the real binary via
// a shell pipeline, the way the paper's evaluation scripts would.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef RESOURCE_QUERY_BIN
#error "RESOURCE_QUERY_BIN must be defined by the build"
#endif

// ctest runs each discovered test as its own process, in parallel, all
// sharing TempDir() — so every scratch filename carries the pid.
std::string temp_dir() {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + std::to_string(::getpid()) + "_";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << content;
}

/// Run the CLI with `commands` on stdin; returns captured stdout.
std::string run_cli(const std::string& args, const std::string& commands,
                    int* exit_code = nullptr) {
  const std::string dir = temp_dir();
  const std::string cmd_path = dir + "rq_commands.txt";
  const std::string out_path = dir + "rq_output.txt";
  std::ofstream(cmd_path) << commands;
  const std::string cmdline = std::string(RESOURCE_QUERY_BIN) + " " + args +
                              " < " + cmd_path + " > " + out_path + " 2>&1";
  const int rc = std::system(cmdline.c_str());
  if (exit_code != nullptr) *exit_code = rc;
  std::ifstream in(out_path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    grug_ = temp_dir() + "cli_sys.grug";
    job_ = temp_dir() + "cli_job.yaml";
    write_file(grug_,
               "filters core\nfilter-at cluster rack\n"
               "cluster count=1\n  rack count=2\n    node count=2\n"
               "      core count=4\n");
    write_file(job_,
               "resources:\n"
               "  - type: node\n"
               "    count: 1\n"
               "    with:\n"
               "      - type: slot\n"
               "        count: 1\n"
               "        with:\n"
               "          - type: core\n"
               "            count: 2\n"
               "attributes:\n"
               "  system:\n"
               "    duration: 60\n");
  }
  std::string grug_;
  std::string job_;
};

TEST_F(CliTest, InfoAndAllocate) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "info\nmatch allocate " + job_ + "\nquit\n");
  EXPECT_NE(out.find("vertices: 23 live"), std::string::npos) << out;
  EXPECT_NE(out.find("/cluster0/rack0/node0/core0"), std::string::npos)
      << out;
}

TEST_F(CliTest, RliteFormat) {
  const std::string out = run_cli(
      "--grug " + grug_ + " --format rlite",
      "match allocate " + job_ + "\nquit\n");
  EXPECT_NE(out.find("\"R_lite\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"core\": 2"), std::string::npos) << out;
}

TEST_F(CliTest, SatisfiabilityAndFailure) {
  const std::string big = temp_dir() + "cli_big.yaml";
  write_file(big,
             "resources:\n"
             "  - type: slot\n"
             "    count: 1\n"
             "    with:\n"
             "      - type: node\n"
             "        count: 9\n"
             "        exclusive: true\n");
  const std::string out = run_cli(
      "--grug " + grug_,
      "match satisfiability " + job_ + "\nmatch satisfiability " + big +
          "\nquit\n");
  EXPECT_NE(out.find("satisfiable"), std::string::npos) << out;
  EXPECT_NE(out.find("MATCH FAILED (unsatisfiable)"), std::string::npos)
      << out;
}

TEST_F(CliTest, CancelRoundTrip) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + job_ + "\ncancel 1\ncancel 1\nquit\n");
  EXPECT_NE(out.find("canceled"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown job"), std::string::npos) << out;
}

TEST_F(CliTest, HighIdPolicySelectsFromTheTop) {
  const std::string out = run_cli(
      "--grug " + grug_ + " --policy high-id",
      "match allocate " + job_ + "\nquit\n");
  EXPECT_NE(out.find("/cluster0/rack1/node3"), std::string::npos) << out;
}

TEST_F(CliTest, JgfDump) {
  const std::string out = run_cli("--grug " + grug_, "jgf\nquit\n");
  EXPECT_NE(out.find("\"graph\""), std::string::npos);
  EXPECT_NE(out.find("\"subsystem\": \"containment\""), std::string::npos);
}

TEST_F(CliTest, GrowAndShrink) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + job_ + "\n"        // job 1 on node0
      "grow 1 " + job_ + "\n"                // +2 cores
      "shrink 1 /cluster0/rack0/node0\n"     // drop node0's claims
      "shrink 1 /cluster0/rack0/node0\n"     // nothing left there
      "quit\n");
  EXPECT_NE(out.find("shrunk"), std::string::npos) << out;
  EXPECT_NE(out.find("holds nothing"), std::string::npos) << out;
}

TEST_F(CliTest, DetachSubtree) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "detach /cluster0/rack1\n"
      "info\n"
      "detach /cluster0/nowhere\n"
      "quit\n");
  EXPECT_NE(out.find("detached"), std::string::npos) << out;
  // 23 - (1 rack + 2 nodes + 8 cores) = 12 live vertices.
  EXPECT_NE(out.find("vertices: 12 live / 23 total"), std::string::npos)
      << out;
  EXPECT_NE(out.find("unknown path"), std::string::npos) << out;
}

TEST_F(CliTest, RunTraceReportsMetrics) {
  const std::string trace = temp_dir() + "cli_trace.txt";
  write_file(trace, "# tiny trace\n2 100\n4 50\n1 10\n");
  const std::string out = run_cli(
      "--grug " + grug_, "run-trace " + trace + " 4\nquit\n");
  EXPECT_NE(out.find("jobs: 3 completed"), std::string::npos) << out;
  EXPECT_NE(out.find("makespan:"), std::string::npos) << out;
}

TEST_F(CliTest, AllocateWithSatisfiability) {
  const std::string big = temp_dir() + "cli_big2.yaml";
  write_file(big,
             "resources:\n"
             "  - type: slot\n"
             "    count: 1\n"
             "    with:\n"
             "      - type: node\n"
             "        count: 4\n"
             "        exclusive: true\n");
  // Fill the system (4 nodes), then: same request again is BUSY (it could
  // run later), while a 5-node request is UNSATISFIABLE.
  const std::string impossible = temp_dir() + "cli_imp.yaml";
  write_file(impossible,
             "resources:\n"
             "  - type: slot\n"
             "    count: 1\n"
             "    with:\n"
             "      - type: node\n"
             "        count: 5\n"
             "        exclusive: true\n");
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + big + "\n"
      "match allocate_with_satisfiability " + big + "\n"
      "match allocate_with_satisfiability " + impossible + "\nquit\n");
  EXPECT_NE(out.find("MATCH FAILED (resource_busy)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("MATCH FAILED (unsatisfiable)"), std::string::npos)
      << out;
}

TEST_F(CliTest, StatsReportsCountersAfterMixedOps) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + job_ + "\n"
      "match allocate_orelse_reserve " + job_ + "\n"
      "cancel 1\n"
      "stats\nquit\n");
  // Legacy one-liner is intact and non-zero after two matches...
  EXPECT_NE(out.find("visits: "), std::string::npos) << out;
  EXPECT_EQ(out.find("visits: 0,"), std::string::npos) << out;
  // ...and the obs catalogue reports per-op and planner activity.
  EXPECT_NE(out.find("match ops:"), std::string::npos) << out;
  EXPECT_NE(out.find("allocate_orelse_reserve"), std::string::npos) << out;
  EXPECT_NE(out.find("calls=1"), std::string::npos) << out;
  EXPECT_NE(out.find("planner:"), std::string::npos) << out;
  EXPECT_NE(out.find("sdfu:"), std::string::npos) << out;
}

TEST_F(CliTest, StatsVerboseAddsHistograms) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + job_ + "\nstats -v\nquit\n");
  // Verbose mode renders latency histogram bars (bin rows with '#').
  EXPECT_NE(out.find("latency"), std::string::npos) << out;
  EXPECT_NE(out.find('#'), std::string::npos) << out;
}

TEST_F(CliTest, ClearStatsZeroesEverything) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + job_ + "\n"
      "clear-stats\nstats\nquit\n");
  EXPECT_NE(out.find("stats cleared"), std::string::npos) << out;
  // After clearing, the legacy line reads all zeros and the per-op
  // sections (printed only when calls > 0) are gone.
  const auto cleared = out.find("stats cleared");
  const std::string after = out.substr(cleared);
  EXPECT_NE(after.find("visits: 0, pruned: 0, match attempts: 0"),
            std::string::npos)
      << out;
  EXPECT_EQ(after.find("calls="), std::string::npos) << out;
}

TEST_F(CliTest, InfoReportsSubsystemEdges) {
  const std::string out = run_cli("--grug " + grug_, "info\nquit\n");
  // 23-vertex tree: 22 live containment edges.
  EXPECT_NE(out.find("subsystem containment: 22 edges"), std::string::npos)
      << out;
}

TEST_F(CliTest, JgfSystemLoading) {
  // Dump the GRUG system as JGF, then boot a second CLI from that file —
  // the hand-off path between instances and external tools.
  const std::string jgf_file = temp_dir() + "cli_sys.jgf";
  const std::string dump = run_cli("--grug " + grug_, "jgf\nquit\n");
  // Strip the banner line; the rest is the JGF document.
  const auto nl = dump.find('\n');
  write_file(jgf_file, dump.substr(nl + 1));
  const std::string out = run_cli(
      "--jgf " + jgf_file,
      "info\nmatch allocate " + job_ + "\nquit\n");
  EXPECT_NE(out.find("vertices: 23 live"), std::string::npos) << out;
  EXPECT_NE(out.find("/cluster0/rack0/node0/core0"), std::string::npos)
      << out;
}

TEST_F(CliTest, GrugAndJgfAreMutuallyExclusive) {
  int rc = 0;
  run_cli("--grug " + grug_ + " --jgf " + grug_, "quit\n", &rc);
  EXPECT_NE(rc, 0);
  run_cli("", "quit\n", &rc);
  EXPECT_NE(rc, 0);
}

TEST_F(CliTest, BadInputsReportErrors) {
  int rc = 0;
  run_cli("--grug /nonexistent.grug", "quit\n", &rc);
  EXPECT_NE(rc, 0);
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate /nonexistent.yaml\nbogus\nquit\n");
  EXPECT_NE(out.find("cannot read"), std::string::npos);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, SetStatusDrainsAndRevives) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "set-status /cluster0/rack0 drained\n"
      "info\n"
      "tree\n"
      "set-status /cluster0/rack0 up\n"
      "info\n"
      "set-status /cluster0/nowhere down\n"
      "quit\n");
  EXPECT_NE(out.find("/cluster0/rack0: up -> drained, evicted 0 jobs"),
            std::string::npos)
      << out;
  // rack + 2 nodes + 8 cores drained.
  EXPECT_NE(out.find("status: up=12 down=0 drained=11"), std::string::npos)
      << out;
  EXPECT_NE(out.find("rack0 (drained)"), std::string::npos) << out;
  EXPECT_NE(out.find("/cluster0/rack0: drained -> up, evicted 0 jobs"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("status: up=23 down=0 drained=0"), std::string::npos)
      << out;
  EXPECT_NE(out.find("error: set-status"), std::string::npos) << out;
}

TEST_F(CliTest, DownNodeEvictsItsJob) {
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + job_ + "\n"  // lands on node0 (LowId)
      "set-status /cluster0/rack0/node0 down\n"
      "quit\n");
  EXPECT_NE(out.find("/cluster0/rack0/node0: up -> down, evicted 1 jobs"),
            std::string::npos)
      << out;
}

TEST_F(CliTest, ExplainAttributesMatchOutcomes) {
  const std::string big = temp_dir() + "cli_full.yaml";
  write_file(big,
             "resources:\n"
             "  - type: slot\n"
             "    count: 1\n"
             "    with:\n"
             "      - type: node\n"
             "        count: 4\n"
             "        exclusive: true\n"
             "attributes:\n"
             "  system:\n"
             "    duration: 500\n");
  const std::string out = run_cli(
      "--grug " + grug_,
      "match allocate " + big + "\n"   // job 1 fills the machine until 500
      "match allocate " + job_ + "\n"  // attempt 2: busy
      "explain 1\n"
      "explain last\n"
      "explain 77\n"
      "quit\n");
  EXPECT_NE(out.find("job 1: match allocate -> ok"), std::string::npos)
      << out;
  EXPECT_NE(out.find("no rejections recorded; match succeeded"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("job 2: match allocate -> resource_busy"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("dominant blocker: "), std::string::npos) << out;
  EXPECT_NE(out.find("rejections: "), std::string::npos) << out;
  EXPECT_NE(out.find("earliest feasible: t=500"), std::string::npos) << out;
  EXPECT_NE(out.find("no match attempt recorded for job 77"),
            std::string::npos)
      << out;
}

TEST_F(CliTest, GraphGrowAndShrink) {
  const std::string fragment = temp_dir() + "cli_rack.grug";
  write_file(fragment,
             "filters core\nfilter-at rack\n"
             "rack count=1\n  node count=2\n    core count=4\n");
  const std::string out = run_cli(
      "--grug " + grug_,
      "grow /cluster0 " + fragment + "\n"
      "info\n"
      "shrink /cluster0/rack2\n"
      "info\n"
      "quit\n");
  EXPECT_NE(out.find("grew /cluster0/rack2 under /cluster0"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("vertices: 34 live"), std::string::npos) << out;
  EXPECT_NE(out.find("shrunk /cluster0/rack2: removed 11 vertices"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("vertices: 23 live / 34 total"), std::string::npos)
      << out;
}

}  // namespace
