// Integration test for the fluxion-sim batch simulator binary.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef FLUXION_SIM_BIN
#error "FLUXION_SIM_BIN must be defined by the build"
#endif

// ctest runs each discovered test as its own process, in parallel, all
// sharing TempDir() — so every scratch filename carries the pid.
std::string temp_dir() {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  return dir + std::to_string(::getpid()) + "_";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << content;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class SimCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    grug_ = temp_dir() + "sim_sys.grug";
    trace_ = temp_dir() + "sim_trace.txt";
    write_file(grug_,
               "filters node core\nfilter-at cluster rack\n"
               "cluster count=1\n  rack count=1\n    node count=4\n"
               "      core count=8\n");
    write_file(trace_, "# demo\n2 100\n4 50\n1 25\n");
  }
  int run(const std::string& extra, std::string* out = nullptr) {
    const std::string out_path = temp_dir() + "sim_out.txt";
    const std::string cmd = std::string(FLUXION_SIM_BIN) + " --grug " +
                            grug_ + " --trace " + trace_ + " --cores 8 " +
                            extra + " > " + out_path + " 2>&1";
    const int rc = std::system(cmd.c_str());
    if (out != nullptr) *out = slurp(out_path);
    return rc;
  }
  std::string grug_;
  std::string trace_;
};

TEST_F(SimCliTest, EmitsCsvScheduleAndSummary) {
  std::string out;
  ASSERT_EQ(run("", &out), 0) << out;
  EXPECT_NE(out.find("job,nodes,duration,state,start,end,wait,fom,match_ms"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("1,2,100,completed,0,100,0"), std::string::npos) << out;
  EXPECT_NE(out.find("3 jobs, 3 completed, 0 rejected"), std::string::npos)
      << out;
}

TEST_F(SimCliTest, QueueDisciplineChangesSchedule) {
  std::string cons, fcfs;
  ASSERT_EQ(run("--queue conservative", &cons), 0);
  ASSERT_EQ(run("--queue fcfs", &fcfs), 0);
  // Job 3 (1 node) backfills at t=0 under backfilling but waits for the
  // 4-node job under FCFS.
  EXPECT_NE(cons.find("3,1,25,completed,0,25,0"), std::string::npos) << cons;
  EXPECT_EQ(fcfs.find("3,1,25,completed,0,25,0"), std::string::npos) << fcfs;
}

TEST_F(SimCliTest, PerfClassesFillFomColumn) {
  std::string out;
  ASSERT_EQ(run("--perf-classes 7", &out), 0);
  // With classes stamped, fom is >= 0 (last-but-one CSV column not -1).
  EXPECT_EQ(out.find(",-1,"), std::string::npos) << out;
}

TEST_F(SimCliTest, CsvGoesToFile) {
  const std::string csv = temp_dir() + "sim_sched.csv";
  std::string out;
  ASSERT_EQ(run("--csv " + csv, &out), 0);
  const std::string data = slurp(csv);
  EXPECT_NE(data.find("job,nodes"), std::string::npos);
  EXPECT_EQ(out.find("job,nodes"), std::string::npos);  // not on stdout
}

TEST_F(SimCliTest, OnlineReplayWithArrivalColumn) {
  const std::string trace = temp_dir() + "sim_trace_arr.txt";
  write_file(trace, "4 100 0\n4 50 30\n1 10 500\n");
  const std::string out_path = temp_dir() + "sim_arr_out.txt";
  const std::string cmd = std::string(FLUXION_SIM_BIN) + " --grug " + grug_ +
                          " --trace " + trace + " --cores 8 > " + out_path +
                          " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  const std::string out = slurp(out_path);
  // Second job arrived at 30, started at 100 (wait 70); third started at
  // its own arrival.
  EXPECT_NE(out.find("2,4,50,completed,100,150,70"), std::string::npos)
      << out;
  EXPECT_NE(out.find("3,1,10,completed,500,510,0"), std::string::npos)
      << out;
}

TEST_F(SimCliTest, PoissonArrivalsFlag) {
  std::string out;
  ASSERT_EQ(run("--arrivals 50", &out), 0) << out;
  EXPECT_NE(out.find("completed"), std::string::npos);
}

#ifndef FLUXION_ANALYZE_BIN
#error "FLUXION_ANALYZE_BIN must be defined by the build"
#endif

TEST_F(SimCliTest, AnalyzeSummarisesSchedule) {
  const std::string csv = temp_dir() + "sim_an.csv";
  std::string out;
  ASSERT_EQ(run("--perf-classes 3 --csv " + csv, &out), 0);
  const std::string an_out = temp_dir() + "an_out.txt";
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) + " " + csv +
                          " > " + an_out + " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  const std::string report = slurp(an_out);
  EXPECT_NE(report.find("jobs: 3 (3 completed, 0 rejected)"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("fom histogram:"), std::string::npos) << report;
  EXPECT_NE(report.find("wait distribution:"), std::string::npos) << report;
}

TEST_F(SimCliTest, AnalyzeRejectsGarbage) {
  const std::string bad = temp_dir() + "an_bad.csv";
  write_file(bad, "not,a,schedule\n");
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) + " " + bad +
                          " > /dev/null 2>&1";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

TEST_F(SimCliTest, MetricsFlagWritesJsonCatalogue) {
  const std::string metrics = temp_dir() + "sim_metrics.json";
  std::string out;
  ASSERT_EQ(run("--metrics " + metrics, &out), 0) << out;
  const std::string doc = slurp(metrics);
  // Top-level sections of the obs catalogue, with real activity inside.
  EXPECT_NE(doc.find("\"traverser\":{\"visits\":"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"allocate_orelse_reserve\":{\"calls\":3"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"planner\":{"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"queue\":{\"submitted\":3"), std::string::npos) << doc;
}

TEST_F(SimCliTest, TraceOutFlagWritesChromeTraceEvents) {
  const std::string trace_out = temp_dir() + "sim_events.json";
  std::string out;
  ASSERT_EQ(run("--trace-out " + trace_out, &out), 0) << out;
  const std::string doc = slurp(trace_out);
  ASSERT_FALSE(doc.empty());
  // Bare JSON array of events with the trace-event fields.
  EXPECT_EQ(doc.front(), '[') << doc;
  EXPECT_EQ(doc[doc.find_last_not_of('\n')], ']') << doc;
  for (const char* name : {"\"submit\"", "\"start\"", "\"run\"",
                           "\"complete\"", "\"process_name\""}) {
    EXPECT_NE(doc.find(name), std::string::npos) << name << "\n" << doc;
  }
  for (const char* field : {"\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"}) {
    EXPECT_NE(doc.find(field), std::string::npos) << field << "\n" << doc;
  }
}

TEST_F(SimCliTest, AnalyzeMetricsMergesAcrossFiles) {
  const std::string csv = temp_dir() + "an_m.csv";
  std::string out;
  ASSERT_EQ(run("--csv " + csv, &out), 0);
  const std::string metrics = temp_dir() + "an_metrics.json";
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) + " " + csv +
                          " " + csv + " --metrics " + metrics +
                          " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  const std::string doc = slurp(metrics);
  // Two per-file entries plus a merged rollup over both (3 jobs each).
  EXPECT_NE(doc.find("\"files\":[{"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"merged\":{\"jobs\":6"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"wait\":{"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"match_ms\":{"), std::string::npos) << doc;
}

TEST_F(SimCliTest, AnalyzeTraceRebuildsJobLifecycles) {
  const std::string csv = temp_dir() + "an_t.csv";
  std::string out;
  ASSERT_EQ(run("--csv " + csv, &out), 0);
  const std::string trace_out = temp_dir() + "an_events.json";
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) + " " + csv +
                          " --trace " + trace_out + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  const std::string doc = slurp(trace_out);
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.front(), '[') << doc;
  for (const char* name :
       {"\"submit\"", "\"start\"", "\"run\"", "\"complete\""}) {
    EXPECT_NE(doc.find(name), std::string::npos) << name << "\n" << doc;
  }
}

TEST_F(SimCliTest, EventlogFlagWritesJsonlLifecycles) {
  const std::string log = temp_dir() + "sim_events.jsonl";
  std::string out;
  ASSERT_EQ(run("--eventlog " + log, &out), 0) << out;
  const std::string doc = slurp(log);
  ASSERT_FALSE(doc.empty());
  // One JSON object per line, covering the whole lifecycle of the trace.
  EXPECT_EQ(doc.back(), '\n');
  for (const char* frag :
       {"\"ev\":\"submit\"", "\"ev\":\"probe\"", "\"ev\":\"alloc\"",
        "\"ev\":\"start\"", "\"ev\":\"finish\"", "\"wait_resources\":"}) {
    EXPECT_NE(doc.find(frag), std::string::npos) << frag << "\n" << doc;
  }
  std::size_t pos = 0;
  while (pos < doc.size()) {
    EXPECT_EQ(doc[pos], '{') << doc.substr(pos, 40);
    pos = doc.find('\n', pos) + 1;
  }

  // Determinism: the export is byte-identical across thread counts and
  // cache settings (the tool-level face of the differential tests).
  const std::string log2 = temp_dir() + "sim_events2.jsonl";
  ASSERT_EQ(run("--eventlog " + log2 + " --match-threads 8 --no-match-cache",
                &out),
            0)
      << out;
  EXPECT_EQ(slurp(log2), doc);
}

TEST_F(SimCliTest, MetricsPromFlagWritesPrometheusText) {
  const std::string prom = temp_dir() + "sim_metrics.prom";
  std::string out;
  ASSERT_EQ(run("--metrics-prom " + prom, &out), 0) << out;
  const std::string doc = slurp(prom);
  EXPECT_NE(doc.find("# TYPE fluxion_traverser_visits_total counter"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("fluxion_queue_submitted_total 3"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("_bucket{le=\"+Inf\"}"), std::string::npos) << doc;
}

TEST_F(SimCliTest, AnalyzeEventlogReportsBlockedReasons) {
  // fcfs keeps the 4-node job (and everything behind it) blocked until
  // the head job finishes, so the eventlog carries blocked events with
  // attribution for the analyzer to aggregate.
  const std::string log = temp_dir() + "an_ev.jsonl";
  std::string out;
  ASSERT_EQ(run("--queue fcfs --eventlog " + log, &out), 0) << out;
  const std::string an_out = temp_dir() + "an_ev_out.txt";
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) + " --eventlog " +
                          log + " > " + an_out + " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << slurp(an_out);
  const std::string report = slurp(an_out);
  EXPECT_NE(report.find("== eventlog report"), std::string::npos) << report;
  EXPECT_NE(report.find("blocked"), std::string::npos) << report;
  EXPECT_NE(report.find("top blockers"), std::string::npos) << report;
  EXPECT_NE(report.find("wait decomposition"), std::string::npos) << report;
}

TEST_F(SimCliTest, AnalyzeEventlogRejectsGarbage) {
  const std::string bad = temp_dir() + "an_ev_bad.jsonl";
  write_file(bad, "{\"t\":0,\"job\":1,\"ev\":\"submit\"}\nnot json\n");
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) + " --eventlog " +
                          bad + " > /dev/null 2>&1";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

TEST_F(SimCliTest, BenchCompareDiffsTwoReports) {
  const std::string a = temp_dir() + "bench_a.json";
  const std::string b = temp_dir() + "bench_b.json";
  write_file(a,
             "{\"schema_version\":1,\"bench\":\"queue_events\","
             "\"config\":{\"jobs\":100},\"matches_per_s\":1000,"
             "\"ratios\":{\"match_ratio\":0.5}}\n");
  write_file(b,
             "{\"schema_version\":1,\"bench\":\"queue_events\","
             "\"config\":{\"jobs\":100},\"matches_per_s\":1500,"
             "\"ratios\":{\"match_ratio\":0.25}}\n");
  const std::string out_path = temp_dir() + "bench_cmp.txt";
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) +
                          " --bench-compare " + a + " " + b + " > " +
                          out_path + " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << slurp(out_path);
  const std::string report = slurp(out_path);
  EXPECT_NE(report.find("matches_per_s"), std::string::npos) << report;
  EXPECT_NE(report.find("+50"), std::string::npos) << report;  // +50% delta
  EXPECT_NE(report.find("ratios.match_ratio"), std::string::npos) << report;

  // A non-BENCH document is refused.
  const std::string not_bench = temp_dir() + "bench_nb.json";
  write_file(not_bench, "{\"hello\":1}\n");
  const std::string bad_cmd = std::string(FLUXION_ANALYZE_BIN) +
                              " --bench-compare " + a + " " + not_bench +
                              " > /dev/null 2>&1";
  EXPECT_NE(std::system(bad_cmd.c_str()), 0);
}

TEST_F(SimCliTest, BenchCompareZeroBaselineIsNa) {
  // A zero baseline counter used to divide by zero; the delta is
  // undefined, printed as "n/a" (distinct from "-" = key missing on one
  // side), with exit 0 and no inf/nan anywhere in the report.
  const std::string a = temp_dir() + "bench_z_a.json";
  const std::string b = temp_dir() + "bench_z_b.json";
  write_file(a,
             "{\"schema_version\":1,\"bench\":\"queue_events\","
             "\"spec_wasted\":0,\"only_in_a\":3}\n");
  write_file(b,
             "{\"schema_version\":1,\"bench\":\"queue_events\","
             "\"spec_wasted\":12,\"only_in_b\":5}\n");
  const std::string out_path = temp_dir() + "bench_z_cmp.txt";
  const std::string cmd = std::string(FLUXION_ANALYZE_BIN) +
                          " --bench-compare " + a + " " + b + " > " +
                          out_path + " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << slurp(out_path);
  const std::string report = slurp(out_path);
  EXPECT_NE(report.find("n/a"), std::string::npos) << report;
  EXPECT_EQ(report.find("inf"), std::string::npos) << report;
  EXPECT_EQ(report.find("nan"), std::string::npos) << report;
  // Keys present on only one side still get "-" for the missing value.
  EXPECT_NE(report.find("only_in_a"), std::string::npos) << report;
  EXPECT_NE(report.find("only_in_b"), std::string::npos) << report;
}

TEST_F(SimCliTest, BadArgsFail) {
  std::string out;
  EXPECT_NE(run("--queue bogus", &out), 0);
  const std::string cmd = std::string(FLUXION_SIM_BIN) + " --grug /nope";
  EXPECT_NE(std::system((cmd + " > /dev/null 2>&1").c_str()), 0);
}

TEST_F(SimCliTest, ScenarioReplaysDynamicEvents) {
  // Node fails mid-run, victim requeued, a second rack grows, the victim
  // restarts on it. The summary line reports the dynamic activity.
  const std::string scenario = temp_dir() + "sim_scenario.txt";
  const std::string rack = temp_dir() + "sim_rack.grug";
  write_file(rack,
             "filters node core\nfilter-at rack\n"
             "rack count=1\n  node count=4\n    core count=8\n");
  write_file(scenario,
             "1 1000\n1 1000\n1 1000\n1 1000\n"
             "@ 500 status /cluster0/rack0/node0 down requeue\n"
             "@ 600 grow /cluster0 " + rack + "\n");
  const std::string out_path = temp_dir() + "sim_scn_out.txt";
  const std::string cmd = std::string(FLUXION_SIM_BIN) + " --grug " + grug_ +
                          " --scenario " + scenario + " --cores 8 > " +
                          out_path + " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << slurp(out_path);
  const std::string out = slurp(out_path);
  EXPECT_NE(out.find("dyn events 1 status, 1 grow, 0 shrink"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("1 evicted, "), std::string::npos) << out;
  EXPECT_NE(out.find("4 jobs, 4 completed, 0 rejected"), std::string::npos)
      << out;
  // The evicted job restarted when the rack arrived.
  EXPECT_NE(out.find(",completed,600,1600,"), std::string::npos) << out;

  // Determinism: identical schedules on a second run (the trailing
  // match_ms column is wall-clock noise; drop it before comparing).
  const std::string out_path2 = temp_dir() + "sim_scn_out2.txt";
  const std::string csv1 = temp_dir() + "scn1.csv";
  const std::string csv2 = temp_dir() + "scn2.csv";
  for (const auto* p : {&csv1, &csv2}) {
    const std::string c = std::string(FLUXION_SIM_BIN) + " --grug " + grug_ +
                          " --scenario " + scenario + " --cores 8 --csv " +
                          *p + " > " + out_path2 + " 2>&1";
    ASSERT_EQ(std::system(c.c_str()), 0) << slurp(out_path2);
  }
  auto strip_match_ms = [](std::string csv) {
    std::string out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
      const auto eol = csv.find('\n', pos);
      std::string line = csv.substr(pos, eol - pos);
      out += line.substr(0, line.rfind(','));
      out += '\n';
      pos = eol == std::string::npos ? csv.size() : eol + 1;
    }
    return out;
  };
  EXPECT_EQ(strip_match_ms(slurp(csv1)), strip_match_ms(slurp(csv2)));
}

TEST_F(SimCliTest, TraceAndScenarioAreMutuallyExclusive) {
  const std::string scenario = temp_dir() + "sim_both.txt";
  write_file(scenario, "1 10\n");
  const std::string cmd = std::string(FLUXION_SIM_BIN) + " --grug " + grug_ +
                          " --trace " + trace_ + " --scenario " + scenario +
                          " > /dev/null 2>&1";
  EXPECT_NE(std::system(cmd.c_str()), 0);
}

}  // namespace
