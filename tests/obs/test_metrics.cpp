// Unit tests for the obs metric primitives and the PerfMonitor catalogue.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace fluxion::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksLastValueAndHighWater) {
  Gauge g;
  g.set(3);
  g.set(10);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max(), 10);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(OpNames, StableAndDistinct) {
  EXPECT_STREQ(op_name(Op::allocate), "allocate");
  EXPECT_STREQ(op_name(Op::allocate_orelse_reserve),
               "allocate_orelse_reserve");
  EXPECT_STREQ(op_name(Op::satisfiability), "satisfiability");
  EXPECT_STREQ(op_name(Op::allocate_with_satisfiability),
               "allocate_with_satisfiability");
  EXPECT_STREQ(op_name(Op::cancel), "cancel");
}

TEST(EnabledFlag, DefaultsOffAndToggles) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST(PerfMonitor, ResetZeroesEveryGroup) {
  PerfMonitor m;
  m.trav_visits.inc(7);
  m.op(Op::allocate).calls.inc();
  m.op(Op::allocate).latency_us.add(12.0);
  m.planner_span_adds.inc(3);
  m.multi_atf_rounds.inc();
  m.sdfu_spans_per_commit.add(2.0);
  m.queue_depth.set(9);
  m.job_wait.add(100.0);
  m.reset();
  EXPECT_EQ(m.trav_visits.value(), 0u);
  EXPECT_EQ(m.op(Op::allocate).calls.value(), 0u);
  EXPECT_EQ(m.op(Op::allocate).latency_us.count(), 0u);
  EXPECT_EQ(m.planner_span_adds.value(), 0u);
  EXPECT_EQ(m.multi_atf_rounds.value(), 0u);
  EXPECT_EQ(m.sdfu_spans_per_commit.count(), 0u);
  EXPECT_EQ(m.queue_depth.value(), 0);
  EXPECT_EQ(m.queue_depth.max(), 0);
  EXPECT_EQ(m.job_wait.count(), 0u);
}

TEST(PerfMonitor, JsonHasEverySectionAndRoundTripValues) {
  PerfMonitor m;
  m.trav_visits.inc(5);
  m.op(Op::cancel).calls.inc(2);
  m.planner_atf_probes.inc(11);
  m.queue_submitted.inc(4);
  const std::string doc = m.json();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  for (const char* section :
       {"\"traverser\":", "\"ops\":", "\"planner\":", "\"planner_multi\":",
        "\"sdfu\":", "\"queue\":"}) {
    EXPECT_NE(doc.find(section), std::string::npos) << section;
  }
  EXPECT_NE(doc.find("\"visits\":5"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"cancel\":{\"calls\":2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"atf_probes\":11"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"submitted\":4"), std::string::npos) << doc;
}

TEST(PerfMonitor, RenderSkipsIdleOpsAndQueue) {
  PerfMonitor m;
  std::string out = m.render(false);
  EXPECT_EQ(out.find("calls="), std::string::npos) << out;
  EXPECT_EQ(out.find("queue:"), std::string::npos) << out;
  m.op(Op::satisfiability).calls.inc();
  m.queue_submitted.inc();
  out = m.render(false);
  EXPECT_NE(out.find("satisfiability"), std::string::npos) << out;
  EXPECT_NE(out.find("queue:"), std::string::npos) << out;
}

TEST(PerfMonitor, VerboseRenderAppendsHistogramBars) {
  PerfMonitor m;
  m.op(Op::allocate).calls.inc();
  m.op(Op::allocate).latency_us.add(50.0);
  const std::string terse = m.render(false);
  const std::string verbose = m.render(true);
  EXPECT_EQ(terse.find('#'), std::string::npos) << terse;
  EXPECT_NE(verbose.find('#'), std::string::npos) << verbose;
  EXPECT_GT(verbose.size(), terse.size());
}

TEST(GlobalMonitor, IsASingleInstance) {
  monitor().reset();
  monitor().trav_visits.inc();
  EXPECT_EQ(monitor().trav_visits.value(), 1u);
  monitor().reset();
  EXPECT_EQ(monitor().trav_visits.value(), 0u);
}

}  // namespace
}  // namespace fluxion::obs
