// Prometheus text-exposition export (format 0.0.4): counters end in
// _total, every series is preceded by a # TYPE line, histograms emit
// cumulative le-labelled buckets closed by +Inf plus _sum/_count, and
// labelled families (per-op, per-probe-thread) share one TYPE header.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace fluxion::obs {
namespace {

class PrometheusFixture : public ::testing::Test {
 protected:
  PrometheusFixture() {
    set_enabled(true);
    monitor().reset();
  }
  ~PrometheusFixture() override {
    monitor().reset();
    set_enabled(false);
  }
};

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST_F(PrometheusFixture, CountersRenderAsTotalSeries) {
  monitor().trav_visits.inc(7);
  monitor().queue_submitted.inc(3);
  const std::string text = monitor().prometheus();
  EXPECT_NE(text.find("# TYPE fluxion_traverser_visits_total counter\n"
                      "fluxion_traverser_visits_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("fluxion_queue_submitted_total 3\n"), std::string::npos);
}

TEST_F(PrometheusFixture, GaugeRendersValueAndHighWaterMark) {
  monitor().queue_depth.set(9);
  monitor().queue_depth.set(4);
  const std::string text = monitor().prometheus();
  EXPECT_NE(text.find("# TYPE fluxion_queue_depth gauge\n"
                      "fluxion_queue_depth 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("fluxion_queue_depth_max 9\n"), std::string::npos);
}

TEST_F(PrometheusFixture, HistogramBucketsAreCumulativeAndClosed) {
  monitor().job_wait.add(10.0);
  monitor().job_wait.add(20.0);
  const std::string text = monitor().prometheus();
  EXPECT_NE(text.find("# TYPE fluxion_job_wait_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("fluxion_job_wait_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fluxion_job_wait_seconds_sum 30\n"), std::string::npos);
  EXPECT_NE(text.find("fluxion_job_wait_seconds_count 2\n"),
            std::string::npos);
  // Buckets must be monotone non-decreasing within the family.
  std::uint64_t prev = 0;
  bool saw_bucket = false;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("fluxion_job_wait_seconds_bucket{", 0) != 0) continue;
    saw_bucket = true;
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos);
    const std::uint64_t c = std::stoull(line.substr(sp + 1));
    EXPECT_GE(c, prev) << line;
    prev = c;
  }
  EXPECT_TRUE(saw_bucket);
}

TEST_F(PrometheusFixture, LabelledFamiliesShareOneTypeHeader) {
  monitor().op(Op::allocate).calls.inc(5);
  monitor().ensure_probe_threads(2);
  const std::string text = monitor().prometheus();
  std::size_t type_headers = 0;
  bool saw_allocate = false, saw_cancel = false;
  for (const std::string& line : lines_of(text)) {
    if (line == "# TYPE fluxion_op_calls_total counter") ++type_headers;
    if (line == "fluxion_op_calls_total{op=\"allocate\"} 5") {
      saw_allocate = true;
    }
    if (line == "fluxion_op_calls_total{op=\"cancel\"} 0") saw_cancel = true;
  }
  EXPECT_EQ(type_headers, 1u);
  EXPECT_TRUE(saw_allocate);
  EXPECT_TRUE(saw_cancel);
  // Per-thread probe latency series carry a thread label.
  EXPECT_NE(text.find("fluxion_probe_latency_us_bucket{thread=\"0\","),
            std::string::npos);
  EXPECT_NE(text.find("fluxion_probe_latency_us_bucket{thread=\"1\","),
            std::string::npos);
}

TEST_F(PrometheusFixture, EveryLineIsTypeCommentOrSample) {
  monitor().trav_visits.inc();
  monitor().job_wait.add(1.0);
  for (const std::string& line : lines_of(monitor().prometheus())) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) continue;
    // A sample: metric-name[{labels}] SP value.
    EXPECT_EQ(line.rfind("fluxion_", 0), 0u) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace fluxion::obs
