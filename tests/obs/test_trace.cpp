// Unit tests for the structured event trace (Chrome trace-event export).
#include "obs/trace.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "policy/policies.hpp"
#include "queue/job_queue.hpp"

namespace fluxion::obs {
namespace {

TEST(TraceLog, DisabledRecordsNothing) {
  TraceLog tl;
  tl.sim_instant("submit", 1.0, 1);
  tl.sim_span("run", 1.0, 2.0, 1);
  tl.wall_span("allocate", 0, 10);
  EXPECT_EQ(tl.size(), 0u);
  EXPECT_EQ(tl.chrome_json(), "[\n]\n");
}

TEST(TraceLog, EnableNamesTheTwoLanes) {
  TraceLog tl;
  tl.set_enabled(true);
  ASSERT_EQ(tl.size(), 2u);
  const auto& evs = tl.events();
  EXPECT_EQ(evs[0].ph, 'M');
  EXPECT_EQ(evs[0].pid, TraceLog::kSimPid);
  EXPECT_EQ(evs[1].pid, TraceLog::kWallPid);
  // Re-enabling does not duplicate the metadata.
  tl.set_enabled(false);
  tl.set_enabled(true);
  EXPECT_EQ(tl.size(), 2u);
}

TEST(TraceLog, SimTimestampsScaleToMicroseconds) {
  TraceLog tl;
  tl.set_enabled(true);
  tl.sim_instant("submit", 3.5, 7);
  tl.sim_span("run", 3.5, 96.5, 7);
  const auto& evs = tl.events();
  ASSERT_EQ(tl.size(), 4u);
  EXPECT_EQ(evs[2].ph, 'i');
  EXPECT_EQ(evs[2].ts, 3500000);
  EXPECT_EQ(evs[2].tid, 7);
  EXPECT_EQ(evs[3].ph, 'X');
  EXPECT_EQ(evs[3].dur, 96500000);
}

TEST(TraceLog, WallSpansLandOnTheWallLane) {
  TraceLog tl;
  tl.set_enabled(true);
  const auto t0 = tl.now_us();
  EXPECT_GE(t0, 0);
  tl.wall_span("allocate", t0, 42, {{"ok", "true"}});
  const auto& ev = tl.events().back();
  EXPECT_EQ(ev.pid, TraceLog::kWallPid);
  EXPECT_EQ(ev.dur, 42);
  EXPECT_EQ(ev.cat, "match");
}

TEST(TraceLog, NowIsMonotonic) {
  TraceLog tl;
  const auto a = tl.now_us();
  const auto b = tl.now_us();
  EXPECT_GE(b, a);
}

TEST(TraceLog, ChromeJsonShape) {
  TraceLog tl;
  tl.set_enabled(true);
  tl.sim_instant("submit", 0.0, 1, {{"file", trace_str("a.csv")}});
  tl.sim_span("run", 0.0, 5.0, 1);
  const std::string doc = tl.chrome_json();
  EXPECT_EQ(doc.front(), '[');
  EXPECT_EQ(doc[doc.find_last_not_of('\n')], ']');
  // Instant events carry the thread scope; complete spans carry dur.
  EXPECT_NE(doc.find("\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1,\"s\":\"t\""),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"ph\":\"X\",\"ts\":0,\"dur\":5000000"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"args\":{\"file\":\"a.csv\"}"), std::string::npos)
      << doc;
}

TEST(TraceLog, JsonlOneEventPerLine) {
  TraceLog tl;
  tl.set_enabled(true);
  tl.sim_instant("submit", 0.0, 1);
  const std::string doc = tl.jsonl();
  std::size_t lines = 0;
  for (char c : doc) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, tl.size());
  EXPECT_EQ(doc.find('['), std::string::npos);
}

TEST(TraceLog, EscapesNamesAndArgs) {
  TraceLog tl;
  tl.set_enabled(true);
  tl.sim_instant("we\"ird\nname", 0.0, 1,
                 {{"path", trace_str("a\\b\tc")}});
  const std::string doc = tl.chrome_json();
  EXPECT_NE(doc.find("we\\\"ird\\nname"), std::string::npos) << doc;
  EXPECT_NE(doc.find("a\\\\b\\tc"), std::string::npos) << doc;
}

TEST(TraceLog, ClearDropsEvents) {
  TraceLog tl;
  tl.set_enabled(true);
  tl.sim_instant("submit", 0.0, 1);
  ASSERT_GT(tl.size(), 0u);
  tl.clear();
  EXPECT_EQ(tl.size(), 0u);
}

TEST(GlobalTrace, IsASingleInstance) {
  trace().clear();
  EXPECT_EQ(trace().size(), 0u);
}

// Sim-lane instants must come out in non-decreasing timestamp order even
// when one advance dispatches several heap events and an overdue
// reservation is clamped forward to now — the queue moves its clock with
// each fired event precisely so the trace never runs backwards.
TEST(GlobalTrace, SimInstantsAreMonotoneUnderEventDispatch) {
  auto& tl = trace();
  tl.clear();
  tl.set_enabled(true);
  {
    graph::ResourceGraph g(0, 1 << 20);
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster\n"
        "cluster count=1\n  node count=4\n    core count=4\n");
    ASSERT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    ASSERT_TRUE(root);
    policy::LowIdPolicy pol;
    traverser::Traverser trav(g, *root, pol);
    queue::JobQueue q(trav, queue::QueuePolicy::conservative_backfill);
    auto whole = [](std::int64_t n, util::Duration d) {
      auto js = jobspec::make(
          {jobspec::slot(
              n, {jobspec::xres("node", 1, {jobspec::res("core", 4)})})},
          d);
      EXPECT_TRUE(js);
      return *js;
    };
    q.submit(whole(4, 50));
    q.submit(whole(4, 30));                         // reserved at 50
    const auto c = q.submit(whole(4, 20));          // reserved at 80
    q.schedule();
    ASSERT_TRUE(q.advance_to(60));  // fires complete@50 and start@50
    // Overdue reservation: c's start is rewound into the past and must
    // fire clamped to now, not stamp a timestamp behind the trace.
    q.test_rewind_reservation(c, 10);
    ASSERT_TRUE(q.run_to_completion());
  }
  std::size_t instants = 0;
  std::int64_t last_ts = -1;
  for (const auto& ev : tl.events()) {
    if (ev.pid != TraceLog::kSimPid || ev.ph != 'i') continue;
    EXPECT_GE(ev.ts, last_ts) << "instant #" << instants << " ('" << ev.name
                              << "') runs backwards";
    last_ts = ev.ts;
    ++instants;
  }
  // 3 submits, 1 immediate + 2 fired starts, 2 reserves, 3 completes.
  EXPECT_GE(instants, 11u);
  tl.set_enabled(false);
  tl.clear();
}

}  // namespace
}  // namespace fluxion::obs
