#include "yaml/yaml.hpp"

#include <gtest/gtest.h>

namespace fluxion::yaml {
namespace {

TEST(Yaml, EmptyDocumentIsNull) {
  auto r = parse("");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->is_null());
  auto r2 = parse("# only a comment\n\n---\n");
  ASSERT_TRUE(r2);
  EXPECT_TRUE(r2->is_null());
}

TEST(Yaml, ScalarDocument) {
  auto r = parse("hello");
  ASSERT_TRUE(r);
  ASSERT_TRUE(r->is_scalar());
  EXPECT_EQ(r->scalar(), "hello");
}

TEST(Yaml, SimpleMapping) {
  auto r = parse("version: 1\nname: fluxion\n");
  ASSERT_TRUE(r);
  ASSERT_TRUE(r->is_mapping());
  EXPECT_EQ(r->get("version")->as_i64(), 1);
  EXPECT_EQ(r->get("name")->as_string(), "fluxion");
  EXPECT_EQ(r->get("missing"), nullptr);
}

TEST(Yaml, NestedMapping) {
  auto r = parse(
      "attributes:\n"
      "  system:\n"
      "    duration: 3600\n");
  ASSERT_TRUE(r);
  const Node* d = r->get("attributes")->get("system")->get("duration");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->as_i64(), 3600);
}

TEST(Yaml, BlockSequenceOfScalars) {
  auto r = parse("- a\n- b\n- c\n");
  ASSERT_TRUE(r);
  ASSERT_TRUE(r->is_sequence());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ(r->items()[1].scalar(), "b");
}

TEST(Yaml, SequenceOfMappingsCompact) {
  auto r = parse(
      "- type: node\n"
      "  count: 2\n"
      "- type: core\n"
      "  count: 16\n");
  ASSERT_TRUE(r);
  ASSERT_TRUE(r->is_sequence());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ(r->items()[0].get("type")->scalar(), "node");
  EXPECT_EQ(r->items()[0].get("count")->as_i64(), 2);
  EXPECT_EQ(r->items()[1].get("type")->scalar(), "core");
}

TEST(Yaml, CanonicalJobspecShape) {
  const char* doc =
      "version: 1\n"
      "resources:\n"
      "  - type: slot\n"
      "    count: 1\n"
      "    label: default\n"
      "    with:\n"
      "      - type: core\n"
      "        count: 10\n"
      "      - type: memory\n"
      "        count: 8\n"
      "attributes:\n"
      "  system:\n"
      "    duration: 3600\n";
  auto r = parse(doc);
  ASSERT_TRUE(r);
  const Node* res = r->get("resources");
  ASSERT_NE(res, nullptr);
  ASSERT_TRUE(res->is_sequence());
  const Node& slot = res->items()[0];
  EXPECT_EQ(slot.get("type")->scalar(), "slot");
  const Node* with = slot.get("with");
  ASSERT_EQ(with->size(), 2u);
  EXPECT_EQ(with->items()[1].get("type")->scalar(), "memory");
  EXPECT_EQ(with->items()[1].get("count")->as_i64(), 8);
}

TEST(Yaml, SequenceAtSameIndentAsKey) {
  auto r = parse(
      "resources:\n"
      "- type: node\n"
      "- type: core\n");
  ASSERT_TRUE(r);
  const Node* res = r->get("resources");
  ASSERT_NE(res, nullptr);
  ASSERT_TRUE(res->is_sequence());
  EXPECT_EQ(res->size(), 2u);
}

TEST(Yaml, FlowSequence) {
  auto r = parse("ids: [1, 2, 3]\n");
  ASSERT_TRUE(r);
  const Node* ids = r->get("ids");
  ASSERT_TRUE(ids->is_sequence());
  ASSERT_EQ(ids->size(), 3u);
  EXPECT_EQ(ids->items()[2].as_i64(), 3);
}

TEST(Yaml, FlowMapping) {
  auto r = parse("count: {min: 4, max: 8}\n");
  ASSERT_TRUE(r);
  const Node* c = r->get("count");
  ASSERT_TRUE(c->is_mapping());
  EXPECT_EQ(c->get("min")->as_i64(), 4);
  EXPECT_EQ(c->get("max")->as_i64(), 8);
}

TEST(Yaml, NestedFlow) {
  auto r = parse("m: {a: [1, 2], b: {c: 3}}\n");
  ASSERT_TRUE(r);
  const Node* m = r->get("m");
  EXPECT_EQ(m->get("a")->items()[1].as_i64(), 2);
  EXPECT_EQ(m->get("b")->get("c")->as_i64(), 3);
}

TEST(Yaml, EmptyFlowCollections) {
  auto r = parse("a: []\nb: {}\n");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->get("a")->is_sequence());
  EXPECT_EQ(r->get("a")->size(), 0u);
  EXPECT_TRUE(r->get("b")->is_mapping());
  EXPECT_EQ(r->get("b")->size(), 0u);
}

TEST(Yaml, QuotedScalars) {
  auto r = parse(
      "a: 'single quoted'\n"
      "b: \"double: quoted\"\n"
      "'c d': plain\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("a")->scalar(), "single quoted");
  EXPECT_EQ(r->get("b")->scalar(), "double: quoted");
  EXPECT_EQ(r->get("c d")->scalar(), "plain");
}

TEST(Yaml, CommentsStripped) {
  auto r = parse(
      "# header\n"
      "a: 1  # trailing\n"
      "b: '#not a comment'\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("a")->as_i64(), 1);
  EXPECT_EQ(r->get("b")->scalar(), "#not a comment");
}

TEST(Yaml, BoolAndNullScalars) {
  auto r = parse("t: true\nf: false\nn: null\nt2: ~\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("t")->as_bool(), true);
  EXPECT_EQ(r->get("f")->as_bool(), false);
  EXPECT_TRUE(r->get("n")->is_null());
  EXPECT_TRUE(r->get("t2")->is_null());
}

TEST(Yaml, TypedAccessorMismatchesReturnNullopt) {
  auto r = parse("a: hello\nb: [1]\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("a")->as_i64(), std::nullopt);
  EXPECT_EQ(r->get("a")->as_bool(), std::nullopt);
  EXPECT_EQ(r->get("b")->as_string(), std::nullopt);
}

TEST(Yaml, EmptyValueIsNull) {
  auto r = parse("a:\nb: 1\n");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->get("a")->is_null());
  EXPECT_EQ(r->get("b")->as_i64(), 1);
}

TEST(Yaml, DeeplyNestedSequences) {
  auto r = parse(
      "- \n"
      "  - 1\n"
      "  - 2\n"
      "- \n"
      "  - 3\n");
  ASSERT_TRUE(r);
  ASSERT_TRUE(r->is_sequence());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ(r->items()[0].items()[1].as_i64(), 2);
  EXPECT_EQ(r->items()[1].items()[0].as_i64(), 3);
}

TEST(YamlErrors, TabsRejected) {
  auto r = parse("a:\n\tb: 1\n");
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, util::Errc::parse_error);
}

TEST(YamlErrors, DuplicateKeysRejected) {
  auto r = parse("a: 1\na: 2\n");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message.find("duplicate"), std::string::npos);
}

TEST(YamlErrors, UnterminatedFlow) {
  EXPECT_FALSE(parse("a: [1, 2\n"));
  EXPECT_FALSE(parse("a: {k: 1\n"));
  EXPECT_FALSE(parse("a: 'oops\n"));
}

TEST(YamlErrors, BadIndentation) {
  auto r = parse(
      "a:\n"
      "    b: 1\n"
      "  c: 2\n");
  ASSERT_FALSE(r);
}

TEST(YamlErrors, ErrorsCarryLineNumbers) {
  auto r = parse("a: 1\na: 2\n");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message.find("yaml:2"), std::string::npos);
}

TEST(Yaml, MixedNestingSequenceUnderMappingUnderSequence) {
  auto r = parse(
      "- name: a\n"
      "  items:\n"
      "    - 1\n"
      "    - sub:\n"
      "        - x\n"
      "- name: b\n");
  ASSERT_TRUE(r) << r.error().message;
  ASSERT_TRUE(r->is_sequence());
  const Node& a = r->items()[0];
  EXPECT_EQ(a.get("items")->items()[0].as_i64(), 1);
  EXPECT_EQ(a.get("items")->items()[1].get("sub")->items()[0].scalar(), "x");
  EXPECT_EQ(r->items()[1].get("name")->scalar(), "b");
}

TEST(Yaml, ScalarsWithSpecialCharacters) {
  auto r = parse(
      "path: /a/b-c_d.e\n"
      "expr: a=b\n"
      "neg: -42\n"
      "float: 2.5e3\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("path")->scalar(), "/a/b-c_d.e");
  EXPECT_EQ(r->get("expr")->scalar(), "a=b");
  EXPECT_EQ(r->get("neg")->as_i64(), -42);
  EXPECT_DOUBLE_EQ(*r->get("float")->as_double(), 2500.0);
}

TEST(Yaml, ColonInsideValueNotASplit) {
  auto r = parse("url: http://host:8080/x\n");
  ASSERT_TRUE(r);
  // find_colon requires ": " or line end; "://" does not split.
  EXPECT_EQ(r->get("url")->scalar(), "http://host:8080/x");
}

TEST(Yaml, WindowsLineEndings) {
  auto r = parse("a: 1\r\nb:\r\n  c: 2\r\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("b")->get("c")->as_i64(), 2);
}

TEST(Yaml, DeepNestingTenLevels) {
  std::string doc;
  for (int i = 0; i < 10; ++i) {
    doc += std::string(static_cast<std::size_t>(i) * 2, ' ') + "k" +
           std::to_string(i) + ":\n";
  }
  doc += std::string(20, ' ') + "leaf: 1\n";
  auto r = parse(doc);
  ASSERT_TRUE(r) << r.error().message;
  const Node* n = &*r;
  for (int i = 0; i < 10; ++i) {
    n = n->get("k" + std::to_string(i));
    ASSERT_NE(n, nullptr) << i;
  }
  EXPECT_EQ(n->get("leaf")->as_i64(), 1);
}

TEST(Yaml, DumpRendersFlowStyle) {
  auto r = parse("a: [1, x]\nb: {c: 2}\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->dump(), "{a: [\"1\", \"x\"], b: {c: \"2\"}}");
}

}  // namespace
}  // namespace fluxion::yaml
