#include "yaml/json.hpp"

#include <gtest/gtest.h>

namespace fluxion::yaml {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_json("42")->as_i64(), 42);
  EXPECT_EQ(parse_json("-1.5")->as_double(), -1.5);
  EXPECT_EQ(parse_json("\"hi\"")->scalar(), "hi");
  EXPECT_EQ(parse_json("true")->as_bool(), true);
  EXPECT_EQ(parse_json("false")->as_bool(), false);
  EXPECT_TRUE(parse_json("null")->is_null());
}

TEST(JsonParse, NestedStructures) {
  auto r = parse_json(R"({"a": [1, {"b": "x"}], "c": {}})");
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->get("a")->items()[0].as_i64(), 1);
  EXPECT_EQ(r->get("a")->items()[1].get("b")->scalar(), "x");
  EXPECT_TRUE(r->get("c")->is_mapping());
  EXPECT_EQ(r->get("c")->size(), 0u);
}

TEST(JsonParse, WhitespaceAndPrettyPrinting) {
  auto r = parse_json("\n{\n  \"k\" : [\n    1 ,\n    2\n  ]\n}\n");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("k")->size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  auto r = parse_json(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(r);
  EXPECT_EQ(r->scalar(), "a\"b\\c\ndA");
}

TEST(JsonParse, UnicodeEscapesUtf8) {
  EXPECT_EQ(parse_json(R"("é")")->scalar(), "\xc3\xa9");    // é
  EXPECT_EQ(parse_json(R"("€")")->scalar(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(parse_json(""));
  EXPECT_FALSE(parse_json("{"));
  EXPECT_FALSE(parse_json("[1, 2"));
  EXPECT_FALSE(parse_json("{\"a\": }"));
  EXPECT_FALSE(parse_json("{\"a\": 1,}"));  // trailing comma
  EXPECT_FALSE(parse_json("\"unterminated"));
  EXPECT_FALSE(parse_json("truish"));
  EXPECT_FALSE(parse_json("1 2"));
  EXPECT_FALSE(parse_json("{a: 1}"));  // unquoted key
}

TEST(JsonParse, ErrorsCarryOffsets) {
  auto r = parse_json("[1, oops]");
  ASSERT_FALSE(r);
  EXPECT_NE(r.error().message.find("json:"), std::string::npos);
}

TEST(JsonParse, RoundTripWithWriter) {
  // The writers::Json emitter and this parser must agree.
  const char* doc =
      R"({"version":1,"items":[{"name":"a b","size":16},{"name":"c\"d"}]})";
  auto r = parse_json(doc);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->get("items")->items()[0].get("size")->as_i64(), 16);
  EXPECT_EQ(r->get("items")->items()[1].get("name")->scalar(), "c\"d");
}

}  // namespace
}  // namespace fluxion::yaml
