#include "jobspec/jobspec.hpp"

#include <gtest/gtest.h>

namespace fluxion::jobspec {
namespace {

using util::Errc;

// Paper Figure 4a: shared node, 1 slot with 2 sockets of
// {5 cores, 1 gpu, 16 memory}.
constexpr const char* kFig5a = R"(
version: 1
resources:
  - type: node
    count: 1
    with:
      - type: slot
        count: 1
        label: default
        with:
          - type: socket
            count: 2
            with:
              - type: core
                count: 5
              - type: gpu
                count: 1
              - type: memory
                count: 16
attributes:
  system:
    duration: 3600
)";

TEST(JobspecParse, Figure5aShape) {
  auto js = Jobspec::from_yaml(kFig5a);
  ASSERT_TRUE(js) << js.error().message;
  ASSERT_EQ(js->resources.size(), 1u);
  const Resource& node = js->resources[0];
  EXPECT_EQ(node.type, "node");
  EXPECT_FALSE(node.exclusive);
  ASSERT_EQ(node.with.size(), 1u);
  const Resource& s = node.with[0];
  EXPECT_TRUE(s.is_slot());
  EXPECT_EQ(s.label, "default");
  const Resource& socket = s.with[0];
  EXPECT_EQ(socket.count, 2);
  ASSERT_EQ(socket.with.size(), 3u);
  EXPECT_EQ(socket.with[2].type, "memory");
  EXPECT_EQ(socket.with[2].count, 16);
  EXPECT_EQ(js->duration, 3600);
}

TEST(JobspecParse, CountMinForm) {
  auto js = Jobspec::from_yaml(
      "resources:\n"
      "  - type: slot\n"
      "    count: {min: 4}\n"
      "    with:\n"
      "      - type: core\n"
      "        count: 2\n");
  ASSERT_TRUE(js) << js.error().message;
  EXPECT_EQ(js->resources[0].count, 4);
}

TEST(JobspecParse, ExclusiveFlag) {
  auto js = Jobspec::from_yaml(
      "resources:\n"
      "  - type: slot\n"
      "    count: 1\n"
      "    with:\n"
      "      - type: node\n"
      "        count: 2\n"
      "        exclusive: true\n");
  ASSERT_TRUE(js);
  EXPECT_TRUE(js->resources[0].with[0].exclusive);
}

TEST(JobspecParse, DefaultDuration) {
  auto js = Jobspec::from_yaml(
      "resources:\n"
      "  - type: slot\n"
      "    with:\n"
      "      - type: core\n");
  ASSERT_TRUE(js);
  EXPECT_EQ(js->duration, 3600);
  EXPECT_EQ(js->resources[0].count, 1);
}

TEST(JobspecParseErrors, MissingResources) {
  EXPECT_EQ(Jobspec::from_yaml("version: 1\n").error().code,
            Errc::invalid_argument);
}

TEST(JobspecParseErrors, MissingType) {
  auto r = Jobspec::from_yaml("resources:\n  - count: 1\n");
  EXPECT_FALSE(r);
}

TEST(JobspecParseErrors, BadCount) {
  EXPECT_FALSE(Jobspec::from_yaml(
      "resources:\n  - type: slot\n    count: x\n    with:\n"
      "      - type: core\n"));
  EXPECT_FALSE(Jobspec::from_yaml(
      "resources:\n  - type: slot\n    count: 0\n    with:\n"
      "      - type: core\n"));
}

TEST(JobspecParseErrors, BadDuration) {
  EXPECT_FALSE(Jobspec::from_yaml(
      "resources:\n  - type: slot\n    with:\n      - type: core\n"
      "attributes:\n  system:\n    duration: -5\n"));
}

TEST(JobspecValidate, RequiresSlotOnEveryPath) {
  // No slot at all.
  auto no_slot = make({res("node", 1, {res("core", 4)})}, 60);
  ASSERT_FALSE(no_slot);
  EXPECT_NE(no_slot.error().message.find("slot"), std::string::npos);
  // One branch with, one without.
  auto partial = make(
      {res("node", 1, {slot(1, {res("core", 2)}), res("gpu", 1)})}, 60);
  EXPECT_FALSE(partial);
}

TEST(JobspecValidate, RejectsNestedSlots) {
  auto nested = make({slot(1, {slot(1, {res("core", 1)})})}, 60);
  ASSERT_FALSE(nested);
  EXPECT_NE(nested.error().message.find("slot"), std::string::npos);
}

TEST(JobspecValidate, RejectsEmptySlot) {
  Jobspec js;
  Resource s;
  s.type = "slot";
  js.resources.push_back(s);
  EXPECT_FALSE(js.validate());
}

TEST(JobspecValidate, RejectsBadTypeName) {
  EXPECT_FALSE(make({slot(1, {res("co re", 1)})}, 60));
}

TEST(JobspecBuilders, ComposeFigure5b) {
  // Paper Figure 4b: 2 racks, each with 2 slots of 2 exclusive nodes with
  // >= 22 cores and 2 gpus.
  auto js = make(
      {res("rack", 2,
           {slot(2, {xres("node", 2, {res("core", 22), res("gpu", 2)})})})},
      7200);
  ASSERT_TRUE(js) << js.error().message;
  const auto counts = js->aggregate_counts();
  // rack:2 * slot:2 * node:2 -> 8 nodes, 176 cores, 16 gpus.
  std::map<std::string, std::int64_t> m(counts.begin(), counts.end());
  EXPECT_EQ(m.at("rack"), 2);
  EXPECT_EQ(m.at("node"), 8);
  EXPECT_EQ(m.at("core"), 176);
  EXPECT_EQ(m.at("gpu"), 16);
  EXPECT_EQ(m.count("slot"), 0u);
}

TEST(JobspecBuilders, StorageOnlyRequest) {
  // Paper Figure 4c: 128 I/O bandwidth units within a shared pfs.
  auto js = make({res("pfs", 1, {slot(1, {res("io-bw", 128)})})}, 600);
  ASSERT_TRUE(js) << js.error().message;
  std::map<std::string, std::int64_t> m;
  for (auto& [k, v] : js->aggregate_counts()) m[k] = v;
  EXPECT_EQ(m.at("io-bw"), 128);
}

TEST(JobspecRoundTrip, YamlEmitParseIdentity) {
  auto js = make(
      {res("rack", 2,
           {slot(2, {xres("node", 2, {res("core", 22), res("gpu", 2)})})})},
      7200);
  ASSERT_TRUE(js);
  const std::string yaml = js->to_yaml();
  auto js2 = Jobspec::from_yaml(yaml);
  ASSERT_TRUE(js2) << js2.error().message << "\n" << yaml;
  EXPECT_EQ(js2->duration, js->duration);
  ASSERT_EQ(js2->resources.size(), 1u);
  const Resource& rack = js2->resources[0];
  EXPECT_EQ(rack.count, 2);
  const Resource& s = rack.with[0];
  EXPECT_TRUE(s.is_slot());
  EXPECT_TRUE(s.with[0].exclusive);
  EXPECT_EQ(s.with[0].with[0].count, 22);
  // And a second round-trip is byte-identical.
  EXPECT_EQ(js2->to_yaml(), yaml);
}

TEST(JobspecRoundTrip, Figure5aRoundTrips) {
  auto js = Jobspec::from_yaml(kFig5a);
  ASSERT_TRUE(js);
  auto js2 = Jobspec::from_yaml(js->to_yaml());
  ASSERT_TRUE(js2) << js2.error().message;
  EXPECT_EQ(js2->to_yaml(), js->to_yaml());
}

TEST(JobspecAttributes, UserAttributesRoundTrip) {
  const char* doc =
      "resources:\n"
      "  - type: slot\n"
      "    count: 1\n"
      "    with:\n"
      "      - type: core\n"
      "        count: 2\n"
      "attributes:\n"
      "  system:\n"
      "    duration: 120\n"
      "  user:\n"
      "    project: hydro-17\n"
      "    queue: 'debug'\n";
  auto js = Jobspec::from_yaml(doc);
  ASSERT_TRUE(js) << js.error().message;
  EXPECT_EQ(js->user_attributes.at("project"), "hydro-17");
  EXPECT_EQ(js->user_attributes.at("queue"), "debug");
  auto again = Jobspec::from_yaml(js->to_yaml());
  ASSERT_TRUE(again) << js->to_yaml();
  EXPECT_EQ(again->user_attributes, js->user_attributes);
  EXPECT_EQ(again->to_yaml(), js->to_yaml());
}

TEST(JobspecAttributes, NonScalarUserAttributeRejected) {
  EXPECT_FALSE(Jobspec::from_yaml(
      "resources:\n  - type: slot\n    count: 1\n    with:\n"
      "      - type: core\n        count: 1\n"
      "attributes:\n  user:\n    nested:\n      a: 1\n"));
}

TEST(JobspecAggregate, MultipliersCompose) {
  auto js = make({slot(3, {res("core", 10), res("memory", 8)})}, 60);
  ASSERT_TRUE(js);
  std::map<std::string, std::int64_t> m;
  for (auto& [k, v] : js->aggregate_counts()) m[k] = v;
  EXPECT_EQ(m.at("core"), 30);
  EXPECT_EQ(m.at("memory"), 24);
}

}  // namespace
}  // namespace fluxion::jobspec
