#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"
#include "writers/dot.hpp"
#include "writers/jgf.hpp"
#include "writers/jgf_reader.hpp"
#include "writers/json.hpp"
#include "writers/pretty.hpp"
#include "writers/rlite.hpp"
#include "yaml/yaml.hpp"

namespace fluxion::writers {
namespace {

TEST(Json, ScalarRendering) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(Json, Escaping) {
  EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(escape("\ttab"), "\\ttab");
}

TEST(Json, ObjectAndArrayComposition) {
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::object().set("three", 3));
  Json obj = Json::object();
  obj.set("list", std::move(arr)).set("ok", true);
  EXPECT_EQ(obj.dump(), R"({"list":[1,"two",{"three":3}],"ok":true})");
  EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, EmptyCollections) {
  EXPECT_EQ(Json::object().dump(), "{}");
  EXPECT_EQ(Json::array().dump(), "[]");
}

TEST(Json, PrettyIsIndentedAndReparsesAsSameStructure) {
  Json obj = Json::object();
  obj.set("a", Json::array().push(1).push(2)).set("b", "x");
  const std::string pretty = obj.pretty();
  EXPECT_NE(pretty.find("\n  \"a\": [\n"), std::string::npos);
}

class WriterFixture : public ::testing::Test {
 protected:
  WriterFixture() : g(0, 100000) {
    auto recipe = grug::parse(
        "cluster count=1\n  rack count=1\n    node count=2\n"
        "      core count=4\n      memory count=2 size=16\n");
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    trav = std::make_unique<traverser::Traverser>(g, root, pol);
  }
  graph::ResourceGraph g;
  graph::VertexId root{};
  policy::LowIdPolicy pol;
  std::unique_ptr<traverser::Traverser> trav;
};

TEST_F(WriterFixture, GraphJgfHasAllLiveNodesAndEdges) {
  const Json jgf = graph_to_jgf(g);
  const std::string s = jgf.dump();
  // 1 cluster + 1 rack + 2 nodes + 8 cores + 4 memory = 16 vertices.
  EXPECT_EQ(g.live_vertex_count(), 16u);
  // Every path appears in the serialisation.
  EXPECT_NE(s.find("/cluster0/rack0/node0/core0"), std::string::npos);
  EXPECT_NE(s.find("\"subsystem\":\"containment\""), std::string::npos);
  EXPECT_NE(s.find("\"relation\":\"contains\""), std::string::npos);
  EXPECT_NE(s.find("\"relation\":\"in\""), std::string::npos);
  EXPECT_NE(s.find("\"type\":\"memory\""), std::string::npos);
}

TEST_F(WriterFixture, GraphJgfSkipsDeadVertices) {
  const auto racks = g.vertices_of_type(*g.find_type("rack"));
  ASSERT_TRUE(g.detach_subtree(racks[0]));
  const std::string s = graph_to_jgf(g).dump();
  EXPECT_EQ(s.find("rack0"), std::string::npos);
  EXPECT_NE(s.find("cluster0"), std::string::npos);
}

TEST_F(WriterFixture, MatchJgfContainsOnlySelection) {
  auto js = jobspec::make(
      {jobspec::res("node", 1,
                    {jobspec::slot(1, {jobspec::res("core", 2)})})},
      60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  const Json jgf = match_to_jgf(g, *r);
  const std::string s = jgf.dump();
  EXPECT_NE(s.find("core0"), std::string::npos);
  EXPECT_NE(s.find("core1"), std::string::npos);
  EXPECT_EQ(s.find("core2"), std::string::npos);
  EXPECT_EQ(s.find("node1"), std::string::npos);
  EXPECT_NE(s.find("\"exclusive\":true"), std::string::npos);
}

TEST_F(WriterFixture, RliteGroupsByNode) {
  auto js = jobspec::make(
      {jobspec::res("node", 2,
                    {jobspec::slot(1, {jobspec::res("core", 2),
                                       jobspec::res("memory", 8)})})},
      600);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  const Json rlite = match_to_rlite(g, *r);
  const std::string s = rlite.dump();
  EXPECT_NE(s.find("\"node\":\"/cluster0/rack0/node0\""), std::string::npos);
  EXPECT_NE(s.find("\"node\":\"/cluster0/rack0/node1\""), std::string::npos);
  EXPECT_NE(s.find("\"core\":2"), std::string::npos);
  EXPECT_NE(s.find("\"memory\":8"), std::string::npos);
  EXPECT_NE(s.find("\"starttime\":0"), std::string::npos);
  EXPECT_NE(s.find("\"expiration\":600"), std::string::npos);
}

TEST_F(WriterFixture, RliteWholeNodeClaim) {
  auto js = jobspec::make({jobspec::slot(1, {jobspec::xres("node", 1)})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  const std::string s = match_to_rlite(g, *r).dump();
  EXPECT_NE(s.find("/cluster0/rack0/node0"), std::string::npos);
}

TEST_F(WriterFixture, PrettyRendersContainmentTree) {
  auto js = jobspec::make(
      {jobspec::res("node", 2,
                    {jobspec::slot(1, {jobspec::res("core", 2),
                                       jobspec::res("memory", 8)})})},
      600);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  const std::string s = writers::match_to_pretty(g, *r);
  // Header with the window.
  EXPECT_NE(s.find("job 1 @ [0, 600)"), std::string::npos) << s;
  // Intermediate components appear once, claims are indented below them.
  EXPECT_EQ(s.find("cluster0"), s.rfind("cluster0")) << s;
  EXPECT_NE(s.find("\n        core0*"), std::string::npos) << s;
  EXPECT_NE(s.find("memory0[8]*"), std::string::npos) << s;
  // Both nodes' subtrees are present.
  EXPECT_NE(s.find("node0"), std::string::npos);
  EXPECT_NE(s.find("node1"), std::string::npos);
}

TEST_F(WriterFixture, PrettyMarksReservations) {
  auto js = jobspec::make({jobspec::slot(1, {jobspec::xres("node", 2)})},
                          100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, traverser::MatchOp::allocate, 0, 1));
  auto r = trav->match(*js, traverser::MatchOp::allocate_orelse_reserve, 0,
                       2);
  ASSERT_TRUE(r);
  const std::string s = writers::match_to_pretty(g, *r);
  EXPECT_NE(s.find("reserved"), std::string::npos);
  EXPECT_NE(s.find("node0*"), std::string::npos) << s;
}

TEST(RliteGlobal, ClaimsOutsideNodesLandInGlobalGroup) {
  graph::ResourceGraph g(0, 1000);
  const auto cluster = g.add_vertex("cluster", "cluster", 0, 1);
  const auto ssd = g.add_vertex("ssd", "ssd", 0, 512);
  ASSERT_TRUE(g.add_containment(cluster, ssd));
  policy::LowIdPolicy pol;
  traverser::Traverser trav(g, cluster, pol);
  auto js = jobspec::make({jobspec::slot(1, {jobspec::res("ssd", 128)})},
                          60);
  ASSERT_TRUE(js);
  auto r = trav.match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  const std::string s = match_to_rlite(g, *r).dump();
  EXPECT_NE(s.find("\"group\":\"global\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"ssd\":128"), std::string::npos) << s;
}

TEST_F(WriterFixture, DotRendersGraphAndHighlightsMatch) {
  const std::string plain = writers::graph_to_dot(g);
  EXPECT_NE(plain.find("digraph fluxion"), std::string::npos);
  EXPECT_NE(plain.find("label=\"node0\""), std::string::npos);
  EXPECT_NE(plain.find("memory0\\n[16]"), std::string::npos);
  EXPECT_EQ(plain.find("lightblue"), std::string::npos);
  // Reverse "in" edges are not drawn: edge count == vertex count - 1.
  std::size_t arrows = 0;
  for (std::size_t p = plain.find("->"); p != std::string::npos;
       p = plain.find("->", p + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, g.live_vertex_count() - 1);

  auto js = jobspec::make(
      {jobspec::res("node", 1,
                    {jobspec::slot(1, {jobspec::res("core", 2)})})},
      60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  const std::string hi = writers::match_to_dot(g, *r);
  EXPECT_NE(hi.find("fillcolor=lightblue"), std::string::npos);
  EXPECT_NE(hi.find("peripheries=2"), std::string::npos);  // exclusive
}

TEST_F(WriterFixture, JgfIsValidYamlFlowSubset) {
  // Our YAML parser accepts JSON flow syntax; use it as a structural
  // re-parse check of the compact emission.
  auto js = jobspec::make(
      {jobspec::res("node", 1,
                    {jobspec::slot(1, {jobspec::res("core", 1)})})},
      60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  auto reparsed = yaml::parse(match_to_rlite(g, *r).dump());
  ASSERT_TRUE(reparsed) << reparsed.error().message;
  const yaml::Node* exec = reparsed->get("execution");
  ASSERT_NE(exec, nullptr);
  EXPECT_TRUE(exec->get("R_lite")->is_sequence());
  EXPECT_EQ(*reparsed->get("version")->as_i64(), 1);
}

TEST_F(WriterFixture, JgfStatusRoundTrips) {
  // Non-up statuses are emitted and restored; absent means up.
  ASSERT_TRUE(g.set_status(*g.find_by_path("/cluster0/rack0/node0"),
                           graph::ResourceStatus::drained));
  ASSERT_TRUE(g.set_status(*g.find_by_path("/cluster0/rack0/node1/core4"),
                           graph::ResourceStatus::down));
  const std::string jgf = graph_to_jgf(g).dump();
  EXPECT_NE(jgf.find("\"status\":\"drained\""), std::string::npos);
  EXPECT_NE(jgf.find("\"status\":\"down\""), std::string::npos);

  auto back = read_jgf(jgf, 0, 100000);
  ASSERT_TRUE(back) << back.error().message;
  graph::ResourceGraph& g2 = *back->graph;
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    if (!g.vertex(v).alive) continue;
    const auto w = g2.find_by_path(g.vertex(v).path);
    ASSERT_TRUE(w.has_value()) << g.vertex(v).path;
    EXPECT_EQ(g2.vertex(*w).status, g.vertex(v).status) << g.vertex(v).path;
  }
  for (auto s : {graph::ResourceStatus::up, graph::ResourceStatus::down,
                 graph::ResourceStatus::drained}) {
    EXPECT_EQ(g2.status_count(s), g.status_count(s));
  }
  EXPECT_TRUE(g2.validate());
}

TEST_F(WriterFixture, JgfUnknownStatusIsRejected) {
  std::string bad = graph_to_jgf(g).dump();
  const std::string probe = "\"metadata\":{";
  bad.insert(bad.find(probe) + probe.size(), "\"status\":\"offline\",");
  auto r = read_jgf(bad, 0, 100000);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, util::Errc::invalid_argument);
  EXPECT_NE(r.error().message.find("unknown status"), std::string::npos)
      << r.error().message;
}

}  // namespace
}  // namespace fluxion::writers
