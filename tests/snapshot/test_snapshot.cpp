// Snapshot subsystem unit tests: codec primitives, corrupt-input
// rejection, engine round-trips, replica/writer agreement, and the
// mutation-epoch regression (failed cancel/shrink/extend must not
// invalidate caches). The end-to-end replay differential lives in
// tests/integration/test_snapshot_differential.cpp.
#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "grug/grug.hpp"
#include "policy/policies.hpp"
#include "queue/job_queue.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/replica.hpp"

namespace fluxion::snapshot {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

jobspec::Jobspec whole_nodes(std::int64_t n, util::Duration d) {
  auto js = make({slot(n, {xres("node", 1, {res("core", 4)})})}, d);
  EXPECT_TRUE(js);
  return *js;
}

class SnapshotFixture : public ::testing::Test {
 protected:
  SnapshotFixture() : g(0, 1 << 20) {
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster\n"
        "cluster count=1\n  node count=4\n    core count=4\n");
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    trav = std::make_unique<traverser::Traverser>(g, *r, pol);
  }
  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<traverser::Traverser> trav;
};

// --- codec ----------------------------------------------------------------

TEST(SnapshotCodec, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.uv(0);
  w.uv(127);
  w.uv(128);
  w.uv(0xffffffffffffffffULL);
  w.iv(0);
  w.iv(-1);
  w.iv(1);
  w.iv(INT64_MIN);
  w.iv(INT64_MAX);
  w.f64(0.0);
  w.f64(-3.25);
  w.f64(1e300);
  w.str("");
  w.str("hello snapshot");

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.uv(), 0u);
  EXPECT_EQ(r.uv(), 127u);
  EXPECT_EQ(r.uv(), 128u);
  EXPECT_EQ(r.uv(), 0xffffffffffffffffULL);
  EXPECT_EQ(r.iv(), 0);
  EXPECT_EQ(r.iv(), -1);
  EXPECT_EQ(r.iv(), 1);
  EXPECT_EQ(r.iv(), INT64_MIN);
  EXPECT_EQ(r.iv(), INT64_MAX);
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.f64(), -3.25);
  EXPECT_EQ(r.f64(), 1e300);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_FALSE(r.failed());
  EXPECT_TRUE(r.at_end());
}

TEST(SnapshotCodec, IdRunsCompressDenseRanges) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 1024; ++i) ids.push_back(i);
  ids.push_back(5000);
  Writer w;
  w.id_runs(ids);
  // One dense run plus a singleton: a handful of varints, not a thousand.
  EXPECT_LT(w.bytes().size(), 16u);
  Reader r(w.bytes());
  // The decoded set legitimately dwarfs the encoded bytes; only the
  // caller's domain bound (here: the id universe) limits expansion.
  EXPECT_EQ(r.id_runs(6000), ids);
  EXPECT_FALSE(r.failed());

  // The same bytes against a too-small bound are refused — the
  // allocation-bomb guard.
  Reader tight(w.bytes());
  EXPECT_TRUE(tight.id_runs(100).empty());
  EXPECT_TRUE(tight.failed());
}

TEST(SnapshotCodec, ReaderFailsStickyOnTruncation) {
  Writer w;
  w.uv(300);
  w.str("abcdef");
  const std::string full = w.bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Reader r(std::string_view(full).substr(0, cut));
    (void)r.uv();
    (void)r.str();
    EXPECT_TRUE(r.failed()) << "cut=" << cut;
    // The flag is sticky: later reads never clear it, so one check at
    // the end of a section catches any earlier truncation.
    (void)r.uv();
    (void)r.u8();
    EXPECT_TRUE(r.failed()) << "cut=" << cut;
  }
}

// --- corrupt input --------------------------------------------------------

TEST_F(SnapshotFixture, LoadRejectsCorruptInput) {
  EXPECT_FALSE(EngineSnapshot::load(""));
  EXPECT_FALSE(EngineSnapshot::load("not a snapshot at all"));

  auto m = trav->match(whole_nodes(2, 100), traverser::MatchOp::allocate,
                       0, 1);
  ASSERT_TRUE(m);
  const std::string good = EngineSnapshot::save(g, *trav, nullptr);
  ASSERT_TRUE(EngineSnapshot::load(good));

  // Wrong magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_FALSE(EngineSnapshot::load(bad));

  // Future version is refused, not misread.
  bad = good;
  bad[4] = static_cast<char>(kSnapshotVersion + 1);
  EXPECT_FALSE(EngineSnapshot::load(bad));

  // Every truncation fails cleanly (never crashes, never half-loads).
  for (std::size_t cut = 0; cut < good.size(); cut += 7) {
    EXPECT_FALSE(EngineSnapshot::load(std::string_view(good).substr(0, cut)))
        << "cut=" << cut;
  }
}

// --- engine round trip ----------------------------------------------------

TEST_F(SnapshotFixture, EngineRoundTripPreservesClaims) {
  auto m1 = trav->match(whole_nodes(2, 100), traverser::MatchOp::allocate,
                        0, 1);
  auto m2 = trav->match(whole_nodes(1, 50), traverser::MatchOp::allocate,
                        0, 2);
  ASSERT_TRUE(m1);
  ASSERT_TRUE(m2);

  const std::string bytes = save_engine(g, *trav, nullptr);
  auto eng = load_engine(bytes);
  ASSERT_TRUE(eng);
  EXPECT_EQ((*eng)->graph->vertex_count(), g.vertex_count());
  EXPECT_EQ((*eng)->policy_name, "low-id");
  EXPECT_EQ((*eng)->queue, nullptr);
  EXPECT_EQ((*eng)->next_job_id, 3);
  EXPECT_EQ((*eng)->traverser->mutation_epoch(), trav->mutation_epoch());

  // The restored claims block the same capacity: a 4-node job cannot start
  // now on either engine, and becomes feasible at the same instant.
  const auto js = whole_nodes(4, 10);
  traverser::Traverser& rt = *(*eng)->traverser;
  auto p_orig = trav->match(js, traverser::MatchOp::allocate_orelse_reserve,
                            0, 10);
  auto p_rest = rt.match(js, traverser::MatchOp::allocate_orelse_reserve,
                         0, 10);
  ASSERT_TRUE(p_orig);
  ASSERT_TRUE(p_rest);
  EXPECT_EQ(p_orig->at, p_rest->at);
  EXPECT_EQ(p_orig->reserved, p_rest->reserved);

  // Restored job records are live: cancelling them releases the claim.
  EXPECT_TRUE(rt.cancel(1));
  EXPECT_TRUE(rt.cancel(2));
  EXPECT_EQ(rt.find_job(1), nullptr);
}

TEST_F(SnapshotFixture, SaveIsDeterministic) {
  auto m = trav->match(whole_nodes(3, 200), traverser::MatchOp::allocate,
                       0, 1);
  ASSERT_TRUE(m);
  EXPECT_EQ(EngineSnapshot::save(g, *trav, nullptr),
            EngineSnapshot::save(g, *trav, nullptr));
}

TEST_F(SnapshotFixture, QueueRoundTripPreservesJobsAndClock) {
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  q.set_eventlog(true);
  const auto a = q.submit(whole_nodes(4, 100));
  const auto b = q.submit(whole_nodes(2, 50));
  q.schedule();
  ASSERT_TRUE(q.advance_to(60));

  const std::string bytes = save_engine(g, *trav, &q);
  auto eng = load_engine(bytes);
  ASSERT_TRUE(eng);
  ASSERT_NE((*eng)->queue, nullptr);
  queue::JobQueue& rq = *(*eng)->queue;
  EXPECT_EQ(rq.now(), q.now());
  EXPECT_EQ(rq.stats().submitted, q.stats().submitted);
  EXPECT_EQ(rq.stats().completed, q.stats().completed);
  EXPECT_EQ(rq.all_jobs(), q.all_jobs());
  ASSERT_NE(rq.find(a), nullptr);
  ASSERT_NE(rq.find(b), nullptr);
  EXPECT_EQ(rq.find(a)->state, q.find(a)->state);
  EXPECT_EQ(rq.find(b)->state, q.find(b)->state);
  EXPECT_EQ(rq.find(a)->start_time, q.find(a)->start_time);
  // The eventlog rides along byte-for-byte.
  EXPECT_EQ(rq.eventlog().jsonl(), q.eventlog().jsonl());

  // Both engines finish the workload identically.
  q.run_to_completion();
  rq.run_to_completion();
  EXPECT_EQ(rq.find(b)->end_time, q.find(b)->end_time);
  EXPECT_EQ(rq.eventlog().jsonl(), q.eventlog().jsonl());
}

// --- replica --------------------------------------------------------------

TEST_F(SnapshotFixture, ReplicaAgreesWithWriterAtSameEpoch) {
  // Fill the machine until t=100.
  for (int j = 1; j <= 4; ++j) {
    ASSERT_TRUE(trav->match(whole_nodes(1, 100),
                            traverser::MatchOp::allocate, 0, j));
  }
  const std::string bytes = save_engine(g, *trav, nullptr);
  auto rep = Replica::open(bytes);
  ASSERT_TRUE(rep);
  EXPECT_EQ((*rep)->epoch(), trav->mutation_epoch());
  EXPECT_FALSE((*rep)->stale_against(trav->mutation_epoch()));
  EXPECT_EQ((*rep)->policy_name(), "low-id");

  // Satisfiability matches the writer's graph shape.
  EXPECT_TRUE((*rep)->satisfiable(whole_nodes(4, 10)));
  EXPECT_FALSE((*rep)->satisfiable(whole_nodes(5, 10)));

  // Earliest start agrees with the writer's own reserve probe.
  auto w = trav->match(whole_nodes(1, 10),
                       traverser::MatchOp::allocate_orelse_reserve, 0, 99);
  ASSERT_TRUE(w);
  auto rs = (*rep)->earliest_start(whole_nodes(1, 10), 0);
  ASSERT_TRUE(rs);
  EXPECT_EQ(*rs, w->at);
  EXPECT_GE((*rep)->queries(), 3u);

  // The writer's reserve moved its epoch: the replica is now stale, and a
  // refresh from a fresh snapshot catches it up.
  EXPECT_TRUE((*rep)->stale_against(trav->mutation_epoch()));
  EXPECT_TRUE((*rep)->refresh(save_engine(g, *trav, nullptr)));
  EXPECT_FALSE((*rep)->stale_against(trav->mutation_epoch()));

  // A failed refresh keeps the replica serving its current snapshot.
  EXPECT_FALSE((*rep)->refresh("garbage"));
  EXPECT_EQ((*rep)->epoch(), trav->mutation_epoch());
  EXPECT_TRUE((*rep)->satisfiable(whole_nodes(4, 10)));
}

// --- mutation-epoch regression (failed ops must not invalidate) -----------

TEST_F(SnapshotFixture, FailedMutationsDoNotBumpEpoch) {
  ASSERT_TRUE(trav->match(whole_nodes(1, 100),
                          traverser::MatchOp::allocate, 0, 1));
  const std::uint64_t e0 = trav->mutation_epoch();

  // Cleanly failed attempts: unknown job, unknown vertex. All must leave
  // the epoch alone — they touched no span, so caches stay valid.
  EXPECT_FALSE(trav->cancel(999));
  EXPECT_FALSE(trav->shrink(999, 0));
  EXPECT_FALSE(trav->extend(999, 10));
  EXPECT_EQ(trav->mutation_epoch(), e0);

  // Successful ops still bump it.
  EXPECT_TRUE(trav->extend(1, 10));
  EXPECT_EQ(trav->mutation_epoch(), e0 + 1);
  EXPECT_TRUE(trav->cancel(1));
  EXPECT_EQ(trav->mutation_epoch(), e0 + 2);
}

TEST_F(SnapshotFixture, FailedMutationsDoNotInvalidateMatchCache) {
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  ASSERT_TRUE(q.match_cache());
  q.submit(whole_nodes(4, 100));
  q.submit(whole_nodes(4, 100));
  q.schedule();
  const std::uint64_t inval0 = q.stats().cache_invalidations;
  const std::uint64_t wasted0 = q.stats().spec_wasted;

  // A failed direct mutation between passes must not drop the queue's
  // match cache (the regression: unconditional epoch bumps made every
  // failed cancel/shrink/extend an invalidation).
  EXPECT_FALSE(trav->cancel(424242));
  EXPECT_FALSE(trav->extend(424242, 5));
  q.schedule();
  EXPECT_EQ(q.stats().cache_invalidations, inval0);
  EXPECT_EQ(q.stats().spec_wasted, wasted0);
}

}  // namespace
}  // namespace fluxion::snapshot
