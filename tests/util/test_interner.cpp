#include "util/interner.hpp"

#include <gtest/gtest.h>

namespace fluxion::util {
namespace {

TEST(Interner, AssignsDenseIds) {
  Interner in;
  EXPECT_EQ(in.intern("core"), 0u);
  EXPECT_EQ(in.intern("gpu"), 1u);
  EXPECT_EQ(in.intern("memory"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(Interner, InternIsIdempotent) {
  Interner in;
  const auto a = in.intern("node");
  const auto b = in.intern("node");
  EXPECT_EQ(a, b);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, RoundTripsNames) {
  Interner in;
  const auto id = in.intern("burst-buffer");
  EXPECT_EQ(in.name(id), "burst-buffer");
}

TEST(Interner, FindSeenAndUnseen) {
  Interner in;
  in.intern("rack");
  EXPECT_EQ(in.find("rack"), std::optional<InternId>{0});
  EXPECT_EQ(in.find("pdu"), std::nullopt);
}

TEST(Interner, ManyStringsStayStable) {
  Interner in;
  std::vector<InternId> ids;
  for (int i = 0; i < 500; ++i) ids.push_back(in.intern("t" + std::to_string(i)));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(in.name(ids[i]), "t" + std::to_string(i));
    EXPECT_EQ(in.intern("t" + std::to_string(i)), ids[i]);
  }
}

}  // namespace
}  // namespace fluxion::util
