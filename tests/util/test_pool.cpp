#include "util/pool.hpp"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fluxion::util {
namespace {

struct Tracked {
  static int live;
  int value;
  explicit Tracked(int v) : value(v) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(Pool, CreateConstructsAndDestroyDestructs) {
  Pool<Tracked> pool;
  Tracked* a = pool.create(7);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(Tracked::live, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.destroy(a);
  EXPECT_EQ(Tracked::live, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(Pool, RecyclesSlotsWithoutGrowing) {
  Pool<std::int64_t> pool;
  std::int64_t* p = pool.create(1);
  pool.destroy(p);
  const std::size_t cap = pool.capacity();
  // Steady-state churn far beyond one slab must not grow the pool.
  for (int i = 0; i < 10000; ++i) {
    std::int64_t* q = pool.create(i);
    EXPECT_EQ(*q, i);
    pool.destroy(q);
  }
  EXPECT_EQ(pool.capacity(), cap);
}

TEST(Pool, DistinctLiveObjects) {
  Pool<int> pool;
  std::set<int*> ptrs;
  for (int i = 0; i < 200; ++i) {  // spans multiple slabs
    int* p = pool.create(i);
    EXPECT_TRUE(ptrs.insert(p).second) << "slot handed out twice";
  }
  EXPECT_EQ(pool.live(), 200u);
  EXPECT_GE(pool.capacity(), 200u);
  for (int* p : ptrs) {
    EXPECT_GE(*p, 0);
    pool.destroy(p);
  }
  EXPECT_EQ(pool.live(), 0u);
}

TEST(Pool, LifoRecyclingReusesTheFreedSlot) {
  Pool<int> pool;
  int* a = pool.create(1);
  pool.destroy(a);
  int* b = pool.create(2);
  EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_EQ(*b, 2);
  pool.destroy(b);
}

TEST(Pool, NonTrivialTypes) {
  Pool<std::string> pool;
  std::string* s = pool.create("hello, slab");
  EXPECT_EQ(*s, "hello, slab");
  pool.destroy(s);
  std::string* t = pool.create(std::size_t{100}, 'x');
  EXPECT_EQ(t->size(), 100u);
  pool.destroy(t);
}

TEST(Recycler, HandsBackClearedCapacity) {
  Recycler<int> rec;
  std::vector<int> v = rec.get();
  EXPECT_TRUE(v.empty());
  v.assign(100, 42);
  const int* data = v.data();
  const std::size_t cap = v.capacity();
  rec.put(std::move(v));
  std::vector<int> w = rec.get();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.capacity(), cap);
  EXPECT_EQ(w.data(), data);  // literally the same buffer, recycled
}

TEST(Recycler, BoundsItsSpareList) {
  Recycler<int> rec;
  for (int i = 0; i < 200; ++i) {
    std::vector<int> v(16, i);
    rec.put(std::move(v));  // beyond the cap these are simply dropped
  }
  for (int i = 0; i < 200; ++i) {
    std::vector<int> v = rec.get();
    EXPECT_TRUE(v.empty());
  }
}

}  // namespace
}  // namespace fluxion::util
