#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fluxion::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(1, 128);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 128);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRoughlyUnbiased) {
  Rng rng(13);
  // Mean of uniform(0, 100) over many draws should approach 50.
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.uniform(0, 100));
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, IndexInBounds) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

}  // namespace
}  // namespace fluxion::util
