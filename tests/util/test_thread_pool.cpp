#include "util/thread_pool.hpp"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace fluxion::util {
namespace {

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.run_batch(hits.size(), [&](std::size_t item, std::size_t worker) {
    EXPECT_LT(worker, 4u);
    hits[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunBatchIsABarrier) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  pool.run_batch(16, [&](std::size_t, std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  // Every callback has returned by the time run_batch does.
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  bool called = false;
  pool.run_batch(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, BatchSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.run_batch(2, [&](std::size_t, std::size_t worker) {
    EXPECT_LT(worker, 8u);
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run_batch(7, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * 7);
}

TEST(ThreadPool, WorkerIndicesAreStableAndDisjoint) {
  ThreadPool pool(4);
  // Each worker writes only its own slot: no torn counts means the
  // (item, worker) contract holds and per-worker scratch needs no locks.
  std::vector<int> per_worker(4, 0);
  pool.run_batch(64, [&](std::size_t, std::size_t worker) {
    ++per_worker[worker];  // safe iff worker indices never collide
  });
  int sum = 0;
  for (int n : per_worker) sum += n;
  EXPECT_EQ(sum, 64);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.run_batch(10, [&](std::size_t, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace fluxion::util
