#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace fluxion::util {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\tabc\r\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, TrimKeepsInteriorWhitespace) {
  EXPECT_EQ(trim("  a b  c "), "a b  c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitLinesHandlesCrLf) {
  auto lines = split_lines("a\r\nb\nc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(Strings, SplitLinesNoTrailingEmpty) {
  auto lines = split_lines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
}

TEST(Strings, SplitLinesKeepsInteriorEmptyLines) {
  auto lines = split_lines("a\n\nb");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("cluster0", "cluster"));
  EXPECT_FALSE(starts_with("clu", "cluster"));
  EXPECT_TRUE(ends_with("node17", "17"));
  EXPECT_FALSE(ends_with("17", "node17"));
}

TEST(Strings, ParseI64Valid) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("  123  "), 123);
  EXPECT_EQ(parse_i64("0"), 0);
}

TEST(Strings, ParseI64RejectsGarbage) {
  EXPECT_EQ(parse_i64("12x"), std::nullopt);
  EXPECT_EQ(parse_i64(""), std::nullopt);
  EXPECT_EQ(parse_i64("1.5"), std::nullopt);
  EXPECT_EQ(parse_i64("x"), std::nullopt);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parse_double("-0.25"), -0.25);
  EXPECT_EQ(parse_double("1.5abc"), std::nullopt);
}

TEST(Strings, IndentOf) {
  EXPECT_EQ(indent_of("abc"), 0u);
  EXPECT_EQ(indent_of("  abc"), 2u);
  EXPECT_EQ(indent_of("    "), 4u);
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("core"));
  EXPECT_TRUE(is_identifier("burst-buffer_2"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a b"));
  EXPECT_FALSE(is_identifier("a/b"));
}

}  // namespace
}  // namespace fluxion::util
