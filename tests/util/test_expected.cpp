#include "util/expected.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/time.hpp"

namespace fluxion::util {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e);
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(0), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(Errc::not_found, "missing");
  ASSERT_FALSE(e);
  EXPECT_EQ(e.error().code, Errc::not_found);
  EXPECT_EQ(e.error().message, "missing");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, MoveOnlyPayload) {
  Expected<std::unique_ptr<int>> e(std::make_unique<int>(7));
  ASSERT_TRUE(e);
  auto p = std::move(e).value();
  EXPECT_EQ(*p, 7);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s);
}

TEST(Status, CarriesError) {
  Status s(Errc::parse_error, "bad yaml");
  ASSERT_FALSE(s);
  EXPECT_EQ(s.error().code, Errc::parse_error);
}

TEST(ErrcName, AllCodesNamed) {
  EXPECT_STREQ(errc_name(Errc::ok), "ok");
  EXPECT_STREQ(errc_name(Errc::unsatisfiable), "unsatisfiable");
  EXPECT_STREQ(errc_name(Errc::resource_busy), "resource_busy");
  EXPECT_STREQ(errc_name(Errc::internal), "internal");
}

TEST(TimeWindow, ContainsAndOverlaps) {
  TimeWindow a{10, 5};  // [10, 15)
  EXPECT_TRUE(a.contains(10));
  EXPECT_TRUE(a.contains(14));
  EXPECT_FALSE(a.contains(15));
  EXPECT_FALSE(a.contains(9));
  TimeWindow b{14, 2};
  TimeWindow c{15, 2};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

}  // namespace
}  // namespace fluxion::util
