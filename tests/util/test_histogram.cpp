#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace fluxion::util {
namespace {

TEST(Histogram, BinsAndStats) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 49.5);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 99);
  for (auto b : h.bins()) EXPECT_EQ(b, 10u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(10, 20, 2);
  h.add(5);
  h.add(25);
  h.add(15);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 5);
  EXPECT_DOUBLE_EQ(h.max(), 25);
}

TEST(Histogram, QuantilesOnUniformData) {
  Histogram h(0, 1000, 100);
  for (int i = 0; i < 1000; ++i) h.add(i);
  EXPECT_NEAR(h.quantile(0.5), 500, 10);
  EXPECT_NEAR(h.quantile(0.95), 950, 10);
  EXPECT_NEAR(h.quantile(0.0), 0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 999);
}

TEST(Histogram, QuantileOnEmptyAndSingle) {
  Histogram h(0, 10, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.add(7);
  EXPECT_NEAR(h.quantile(0.5), 6.0 + 1.0, 1.01);  // inside the [6,8) bin
}

TEST(Histogram, RenderShowsOnlyNonEmptyBins) {
  Histogram h(0, 100, 10);
  h.add(5);
  h.add(5);
  h.add(95);
  const std::string s = h.render(10);
  EXPECT_NE(s.find("##########"), std::string::npos);  // peak bin
  // Exactly two bin rows.
  std::size_t rows = 0;
  for (std::size_t p = s.find('\n'); p != std::string::npos;
       p = s.find('\n', p + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(Histogram, BinLoBoundaries) {
  Histogram h(10, 30, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 20);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 30);
}

}  // namespace
}  // namespace fluxion::util
