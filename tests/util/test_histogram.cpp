#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace fluxion::util {
namespace {

TEST(Histogram, BinsAndStats) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 49.5);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 99);
  for (auto b : h.bins()) EXPECT_EQ(b, 10u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(10, 20, 2);
  h.add(5);
  h.add(25);
  h.add(15);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bins()[1], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 5);
  EXPECT_DOUBLE_EQ(h.max(), 25);
}

TEST(Histogram, QuantilesOnUniformData) {
  Histogram h(0, 1000, 100);
  for (int i = 0; i < 1000; ++i) h.add(i);
  EXPECT_NEAR(h.quantile(0.5), 500, 10);
  EXPECT_NEAR(h.quantile(0.95), 950, 10);
  EXPECT_NEAR(h.quantile(0.0), 0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 999);
}

TEST(Histogram, QuantileOnEmptyAndSingle) {
  Histogram h(0, 10, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.add(7);
  EXPECT_NEAR(h.quantile(0.5), 6.0 + 1.0, 1.01);  // inside the [6,8) bin
}

TEST(Histogram, RenderShowsOnlyNonEmptyBins) {
  Histogram h(0, 100, 10);
  h.add(5);
  h.add(5);
  h.add(95);
  const std::string s = h.render(10);
  EXPECT_NE(s.find("##########"), std::string::npos);  // peak bin
  // Exactly two bin rows.
  std::size_t rows = 0;
  for (std::size_t p = s.find('\n'); p != std::string::npos;
       p = s.find('\n', p + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(Histogram, QuantileExtremesReturnObservedMinMax) {
  // Regression: q=0 used to report lo_ (the bin-range floor) even though
  // the observed minimum is tracked exactly; symmetrically for q=1.
  Histogram h(0, 100, 10);
  h.add(37);
  h.add(42);
  h.add(63);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 37);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 63);
}

TEST(Histogram, QuantileExtremesWithOnlyOutOfRangeSamples) {
  // All mass in the underflow/overflow counters: the binned scan has
  // nothing to interpolate, but min/max are still exact.
  Histogram h(10, 20, 2);
  h.add(3);
  h.add(42);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42);
}

TEST(Histogram, ResetDropsEverything) {
  Histogram h(0, 10, 5);
  h.add(-1);
  h.add(5);
  h.add(99);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  for (auto b : h.bins()) EXPECT_EQ(b, 0u);
  h.add(7);  // still usable after reset
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bins()[3], 1u);
}

TEST(Histogram, MergeFoldsCountsAndStats) {
  Histogram a(0, 100, 10);
  Histogram b(0, 100, 10);
  a.add(5);
  a.add(15);
  b.add(95);
  b.add(150);   // overflow
  b.add(-3);    // underflow
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.min(), -3);
  EXPECT_DOUBLE_EQ(a.max(), 150);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.bins()[0], 1u);
  EXPECT_EQ(a.bins()[1], 1u);
  EXPECT_EQ(a.bins()[9], 1u);
  EXPECT_DOUBLE_EQ(a.mean(), (5 + 15 + 95 + 150 - 3) / 5.0);
}

TEST(Histogram, MergeIntoEmptyAdoptsMinMax) {
  Histogram a(0, 100, 10);
  Histogram b(0, 100, 10);
  b.add(40);
  ASSERT_TRUE(a.merge(b));
  EXPECT_DOUBLE_EQ(a.min(), 40);
  EXPECT_DOUBLE_EQ(a.max(), 40);
  // Merging an empty histogram is a no-op.
  Histogram empty(0, 100, 10);
  ASSERT_TRUE(a.merge(empty));
  EXPECT_EQ(a.count(), 1u);
}

TEST(Histogram, MergeRejectsIncompatibleLayouts) {
  Histogram a(0, 100, 10);
  a.add(5);
  Histogram different_range(0, 200, 10);
  Histogram different_bins(0, 100, 20);
  different_range.add(42);
  EXPECT_FALSE(a.merge(different_range));
  EXPECT_FALSE(a.merge(different_bins));
  // Failed merges leave the target untouched.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.max(), 5);
}

TEST(Histogram, JsonCarriesStatsAndBins) {
  Histogram h(0, 10, 2);
  h.add(1);
  h.add(6);
  h.add(11);
  const std::string j = h.json();
  EXPECT_NE(j.find("\"count\":3"), std::string::npos) << j;
  EXPECT_NE(j.find("\"min\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"max\":11"), std::string::npos) << j;
  EXPECT_NE(j.find("\"mean\":6"), std::string::npos) << j;
  EXPECT_NE(j.find("\"overflow\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"bins\":[1,1]"), std::string::npos) << j;
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

TEST(Histogram, BinLoBoundaries) {
  Histogram h(10, 30, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 20);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 30);
}

}  // namespace
}  // namespace fluxion::util
