// Multi-subsystem matching: rabbit storage (§5.1), power (flow resources),
// and graph filtering (§3.3) as unit tests.
#include <gtest/gtest.h>

#include "graph/resource_graph.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;
using util::Errc;

/// Rabbit fixture: 2 racks x (2 nodes x 4 cores + 1 rabbit{1024 ssd,
/// 1 lustre-ip}); rabbits double-homed under cluster via "storage".
class RabbitFixture : public ::testing::Test {
 protected:
  RabbitFixture() : g(0, 100000) {
    cluster = g.add_vertex("cluster", "cluster", 0, 1);
    storage = g.intern_subsystem("storage");
    int node_seq = 0;
    for (int r = 0; r < 2; ++r) {
      const auto rack = g.add_vertex("rack", "rack", r, 1);
      EXPECT_TRUE(g.add_containment(cluster, rack));
      for (int n = 0; n < 2; ++n) {
        const auto node = g.add_vertex("node", "node", node_seq++, 1);
        EXPECT_TRUE(g.add_containment(rack, node));
        for (int c = 0; c < 4; ++c) {
          EXPECT_TRUE(
              g.add_containment(node, g.add_vertex("core", "core", c, 1)));
        }
      }
      const auto rabbit = g.add_vertex("rabbit", "rabbit", r, 1);
      EXPECT_TRUE(g.add_containment(rack, rabbit));
      EXPECT_TRUE(g.add_edge(cluster, rabbit, storage, g.contains_rel()));
      EXPECT_TRUE(g.add_containment(
          rabbit, g.add_vertex("ssd", "ssd", r, 1024)));
      EXPECT_TRUE(g.add_containment(
          rabbit, g.add_vertex("lustre-ip", "lustre-ip", r, 1)));
      rabbits.push_back(rabbit);
    }
    g.set_subsystem_filter({g.containment(), storage});
    trav = std::make_unique<Traverser>(g, cluster, pol);
  }
  graph::ResourceGraph g;
  graph::VertexId cluster{};
  util::InternId storage{};
  std::vector<graph::VertexId> rabbits;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
};

TEST_F(RabbitFixture, RackLocalComputePlusStorage) {
  auto js = make(
      {res("rack", 1,
           {slot(1, {xres("node", 2, {res("core", 4)})}),
            res("rabbit", 1, {slot(1, {res("ssd", 256)}, "fs")})})},
      3600);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r) << r.error().message;
  // The ssd claim must come from the SAME rack as the nodes.
  std::string node_rack, ssd_rack;
  for (const auto& ru : r->resources) {
    const auto& v = g.vertex(ru.vertex);
    const std::string type = g.type_name(v.type);
    if (type == "node") node_rack = v.path.substr(0, v.path.find("/node"));
    if (type == "ssd") {
      ssd_rack = v.path.substr(0, v.path.find("/rabbit"));
      EXPECT_EQ(ru.units, 256);
    }
  }
  EXPECT_EQ(node_rack, ssd_rack);
  EXPECT_FALSE(node_rack.empty());
}

TEST_F(RabbitFixture, GlobalStorageStripesAcrossRabbits) {
  auto js = make({slot(1, {res("ssd", 1536)}, "stripe")}, 3600);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r) << r.error().message;
  std::int64_t total = 0;
  int pools = 0;
  for (const auto& ru : r->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) == "ssd") {
      total += ru.units;
      ++pools;
    }
  }
  EXPECT_EQ(total, 1536);
  EXPECT_EQ(pools, 2);  // more than any single rabbit holds
}

TEST_F(RabbitFixture, OneLustreIpPerRabbit) {
  auto fs = make(
      {res("rabbit", 1,
           {slot(1, {res("ssd", 128), res("lustre-ip", 1)}, "fs")})},
      3600);
  ASSERT_TRUE(fs);
  EXPECT_TRUE(trav->match(*fs, MatchOp::allocate, 0, 1));
  EXPECT_TRUE(trav->match(*fs, MatchOp::allocate, 0, 2));
  auto third = trav->match(*fs, MatchOp::allocate, 0, 3);
  ASSERT_FALSE(third);
  EXPECT_EQ(third.error().code, Errc::resource_busy);
}

TEST_F(RabbitFixture, StorageOnlyAllocationHasNoCompute) {
  auto js = make({slot(1, {res("ssd", 64)}, "fs")}, 3600);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  for (const auto& ru : r->resources) {
    const std::string type = g.type_name(g.vertex(ru.vertex).type);
    EXPECT_TRUE(type == "ssd") << type;
  }
}

TEST_F(RabbitFixture, SubsystemFilterHidesStorageEdges) {
  // With only containment visible, global ssd is still reachable (ssd
  // pools are containment descendants of racks) but double-homed edges
  // are not followed — candidate dedup must keep counts right either way.
  g.set_subsystem_filter({g.containment()});
  auto js = make({slot(1, {res("ssd", 1536)}, "stripe")}, 3600);
  ASSERT_TRUE(js);
  EXPECT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  // Now hide containment too: nothing reachable.
  g.set_subsystem_filter({storage});
  auto r2 = trav->match(*js, MatchOp::allocate, 0, 2);
  EXPECT_FALSE(r2);
  g.set_subsystem_filter({});
}

TEST_F(RabbitFixture, DoubleHomedVertexCountedOnce) {
  // Request exactly the number of rabbits that exist; if the dual edges
  // double-counted candidates this would wrongly succeed with 3+.
  auto two = make({slot(2, {xres("rabbit", 1)})}, 60);
  ASSERT_TRUE(two);
  EXPECT_TRUE(trav->match(*two, MatchOp::allocate, 0, 1));
  auto one_more = make({slot(1, {xres("rabbit", 1)})}, 60);
  ASSERT_TRUE(one_more);
  EXPECT_FALSE(trav->match(*one_more, MatchOp::allocate, 0, 2));
}

/// Power fixture: facility pool (3000 W) + per-rack pools (2000 W) in a
/// "power" subsystem over a 2-rack compute tree.
class PowerFixture : public ::testing::Test {
 protected:
  PowerFixture() : g(0, 100000) {
    cluster = g.add_vertex("cluster", "cluster", 0, 1);
    power = g.intern_subsystem("power");
    const auto fac = g.add_vertex("power", "facility-pw", 0, 3000);
    EXPECT_TRUE(g.add_edge(cluster, fac, power, g.contains_rel()));
    for (int r = 0; r < 2; ++r) {
      const auto rack = g.add_vertex("rack", "rack", r, 1);
      EXPECT_TRUE(g.add_containment(cluster, rack));
      EXPECT_TRUE(g.add_edge(rack,
                             g.add_vertex("rack-power", "rack-pw", r, 2000),
                             power, g.contains_rel()));
      for (int n = 0; n < 4; ++n) {
        const auto node = g.add_vertex("node", "node", r * 4 + n, 1);
        EXPECT_TRUE(g.add_containment(rack, node));
      }
    }
    g.set_subsystem_filter({g.containment(), power});
    trav = std::make_unique<Traverser>(g, cluster, pol);
  }
  jobspec::Jobspec hungry() {
    auto js = make(
        {res("rack", 1,
             {slot(1, {xres("node", 4)}),
              slot(1, {res("rack-power", 1800)}, "rack-pw")}),
         slot(1, {res("power", 1800)}, "fac-pw")},
        3600);
    EXPECT_TRUE(js);
    return *js;
  }
  graph::ResourceGraph g;
  graph::VertexId cluster{};
  util::InternId power{};
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
};

TEST_F(PowerFixture, FacilityCapBindsBeforeRackCaps) {
  ASSERT_TRUE(trav->match(hungry(), MatchOp::allocate, 0, 1));
  // Rack1 and its PDU are free, but the facility pool has only 1200 W.
  auto r2 = trav->match(hungry(), MatchOp::allocate, 0, 2);
  ASSERT_FALSE(r2);
  auto r2r = trav->match(hungry(), MatchOp::allocate_orelse_reserve, 0, 2);
  ASSERT_TRUE(r2r);
  EXPECT_EQ(r2r->at, 3600);
}

TEST_F(PowerFixture, RackCapBinds) {
  // 2100 W from one rack pdu exceeds its 2000 W cap outright.
  auto js = make(
      {res("rack", 1, {slot(1, {res("rack-power", 2100)}, "pw")})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 1);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Errc::unsatisfiable);
}

TEST_F(PowerFixture, LowPowerJobBackfills) {
  ASSERT_TRUE(trav->match(hungry(), MatchOp::allocate, 0, 1));
  auto modest = make({slot(1, {xres("node", 2)}),
                      slot(1, {res("power", 900)}, "pw")},
                     600);
  ASSERT_TRUE(modest);
  EXPECT_TRUE(trav->match(*modest, MatchOp::allocate, 0, 3));
  // But 1300 W cannot fit under the remaining 1200 W facility budget.
  auto heavy = make({slot(1, {res("power", 1300)}, "pw")}, 600);
  ASSERT_TRUE(heavy);
  EXPECT_FALSE(trav->match(*heavy, MatchOp::allocate, 0, 4));
}

}  // namespace
}  // namespace fluxion::traverser
