// Match-failure attribution oracle: the RejectionProfile a probe carries
// must reconcile exactly with the TraverserStats counters incremented at
// the same code sites — filter_pruned vs stats.pruned, status_pruned vs
// stats.status_pruned, postorder vs stats.postorder_rejects — under both
// scored and first-match traversal, and must leave no trace when
// introspection is off.
#include <gtest/gtest.h>

#include <memory>

#include "dynamic/dynamic.hpp"
#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

constexpr const char* kRecipe = R"(
filters core memory
filter-at cluster rack
cluster count=1
  rack count=2
    node count=2
      core count=4
      memory count=2 size=16
)";

class RejectionProfileTest : public ::testing::Test {
 protected:
  RejectionProfileTest() : g(0, 100000) {
    auto recipe = grug::parse(kRecipe);
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    trav = std::make_unique<Traverser>(g, root, pol);
  }

  jobspec::Jobspec node_job(std::int64_t nodes, std::int64_t cores,
                            util::Duration d) {
    auto js = make({slot(nodes, {xres("node", 1, {res("core", cores)})})}, d);
    EXPECT_TRUE(js);
    return *js;
  }

  struct StatDelta {
    std::uint64_t pruned, status_pruned, postorder;
  };

  StatDelta failing_match(const jobspec::Jobspec& js) {
    const auto& s = trav->stats();
    const StatDelta before{s.pruned, s.status_pruned, s.postorder_rejects};
    EXPECT_FALSE(trav->match(js, MatchOp::allocate, 0, next_id++));
    return {s.pruned - before.pruned, s.status_pruned - before.status_pruned,
            s.postorder_rejects - before.postorder};
  }

  void expect_reconciled(const RejectionProfile& rp, const StatDelta& d) {
    EXPECT_EQ(rp.total(RejectReason::filter), d.pruned);
    EXPECT_EQ(rp.total(RejectReason::status), d.status_pruned);
    EXPECT_EQ(rp.total(RejectReason::postorder), d.postorder);
  }

  graph::ResourceGraph g;
  graph::VertexId root = graph::kInvalidVertex;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
  JobId next_id = 1;
};

TEST_F(RejectionProfileTest, ReconcilesWithStatsOnFullMachine) {
  trav->set_introspection(true);
  ASSERT_TRUE(trav->match(node_job(4, 4, 100), MatchOp::allocate, 0, 99));
  const StatDelta d = failing_match(node_job(1, 4, 10));
  const RejectionProfile& rp = trav->last_rejections();
  ASSERT_FALSE(rp.empty());
  expect_reconciled(rp, d);
  // Something must have been attributed for a machine-full failure.
  EXPECT_GT(rp.total(RejectReason::filter) + rp.total(RejectReason::busy) +
                rp.total(RejectReason::exclusivity),
            0u);
}

TEST_F(RejectionProfileTest, ReconcilesWithDrainedNodes) {
  trav->set_introspection(true);
  dynamic::DynamicResources dyn(g, *trav);
  const auto nodes = g.vertices_of_type(*g.find_type("node"));
  ASSERT_EQ(nodes.size(), 4u);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    ASSERT_TRUE(dyn.set_status(nodes[i], graph::ResourceStatus::drained));
  }
  const StatDelta d = failing_match(node_job(2, 4, 10));
  const RejectionProfile& rp = trav->last_rejections();
  ASSERT_FALSE(rp.empty());
  expect_reconciled(rp, d);
}

TEST_F(RejectionProfileTest, ReconcilesUnderFirstMatch) {
  trav->set_introspection(true);
  trav->set_traversal_mode(TraversalMode::first_match);
  ASSERT_TRUE(trav->match(node_job(4, 4, 100), MatchOp::allocate, 0, 99));
  const StatDelta d = failing_match(node_job(2, 4, 10));
  const RejectionProfile& rp = trav->last_rejections();
  ASSERT_FALSE(rp.empty());
  expect_reconciled(rp, d);
}

TEST_F(RejectionProfileTest, DominantNamesTheHeaviestType) {
  trav->set_introspection(true);
  ASSERT_TRUE(trav->match(node_job(4, 4, 100), MatchOp::allocate, 0, 99));
  failing_match(node_job(1, 4, 10));
  const RejectionProfile& rp = trav->last_rejections();
  util::InternId dom = 0;
  ASSERT_TRUE(rp.dominant(dom));
  // The dominant type's total must be the maximum across touched types.
  const std::uint64_t dom_total = rp.at(dom).total();
  for (const util::InternId t : rp.touched()) {
    EXPECT_LE(rp.at(t).total(), dom_total);
  }
  EXPECT_GT(dom_total, 0u);
}

TEST_F(RejectionProfileTest, HintNamesTheNextReleaseTime) {
  trav->set_introspection(true);
  ASSERT_TRUE(trav->match(node_job(4, 4, 100), MatchOp::allocate, 0, 99));
  failing_match(node_job(1, 4, 10));
  // Everything frees at t=100, so the aggregate lower bound lands there.
  EXPECT_EQ(trav->last_rejections().earliest_hint, 100);
}

TEST_F(RejectionProfileTest, ExplainArgsRenderDominantReasonsAndHint) {
  trav->set_introspection(true);
  ASSERT_TRUE(trav->match(node_job(4, 4, 100), MatchOp::allocate, 0, 99));
  failing_match(node_job(1, 4, 10));
  const auto args = trav->explain_args();
  ASSERT_FALSE(args.empty());
  bool saw_dominant = false, saw_hint = false, saw_reason = false;
  for (const auto& [key, value] : args) {
    if (key == "dominant") {
      saw_dominant = true;
      EXPECT_EQ(value.front(), '"');  // JSON string fragment
    } else if (key == "hint") {
      saw_hint = true;
      EXPECT_EQ(value, "100");
    } else {
      saw_reason = true;  // per-reason tally, bare number
      EXPECT_NE(value, "0");
    }
  }
  EXPECT_TRUE(saw_dominant);
  EXPECT_TRUE(saw_hint);
  EXPECT_TRUE(saw_reason);
}

TEST_F(RejectionProfileTest, DisabledLeavesNoTrace) {
  ASSERT_FALSE(trav->introspection());
  ASSERT_TRUE(trav->match(node_job(4, 4, 100), MatchOp::allocate, 0, 99));
  failing_match(node_job(1, 4, 10));
  EXPECT_TRUE(trav->last_rejections().empty());
  EXPECT_EQ(trav->last_rejections().earliest_hint, -1);
  EXPECT_TRUE(trav->explain_args().empty());
}

TEST_F(RejectionProfileTest, SuccessfulMatchClearsTheProfile) {
  trav->set_introspection(true);
  ASSERT_TRUE(trav->match(node_job(4, 4, 100), MatchOp::allocate, 0, 99));
  failing_match(node_job(1, 4, 10));
  ASSERT_FALSE(trav->last_rejections().empty());
  ASSERT_TRUE(trav->cancel(99));
  ASSERT_TRUE(trav->match(node_job(1, 4, 10), MatchOp::allocate, 0, 100));
  // A clean success may legitimately tally nothing; what matters is that
  // the stored profile now describes the successful walk, not the old
  // failure: no stale hint survives.
  EXPECT_EQ(trav->last_rejections().earliest_hint, -1);
}

}  // namespace
}  // namespace fluxion::traverser
