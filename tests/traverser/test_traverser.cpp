// Traverser unit tests: matching, exclusivity, pruning, reservations and
// cancel, on small hand-built systems.
#include "traverser/traverser.hpp"

#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;
using util::Errc;

constexpr const char* kTinyRecipe = R"(
filters core memory
filter-at cluster rack
cluster count=1
  rack count=2
    node count=2
      core count=4
      memory count=2 size=16
      gpu count=1
)";

class TinyCluster : public ::testing::Test {
 protected:
  TinyCluster() : g(0, 100000) {
    auto recipe = grug::parse(kTinyRecipe);
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    trav = std::make_unique<Traverser>(g, root, pol);
  }

  std::int64_t total_core_avail(util::TimePoint t) {
    std::int64_t total = 0;
    for (auto v : g.vertices_of_type(*g.find_type("core"))) {
      total += *g.vertex(v).schedule->avail_at(t);
    }
    return total;
  }

  graph::ResourceGraph g;
  graph::VertexId root = graph::kInvalidVertex;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
};

TEST_F(TinyCluster, AllocateSimpleSlot) {
  auto js = make({res("node", 1, {slot(1, {res("core", 2)})})}, 10);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->at, 0);
  EXPECT_FALSE(r->reserved);
  EXPECT_EQ(total_core_avail(0), 16 - 2);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(TinyCluster, ClaimedCoresAreExclusive) {
  auto js = make({res("node", 1, {slot(1, {res("core", 2)})})}, 10);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  const MatchResult* alloc = trav->find_job(1);
  ASSERT_NE(alloc, nullptr);
  bool core_claimed = false;
  for (const ResourceUnit& ru : alloc->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) == "core") {
      EXPECT_TRUE(ru.exclusive);
      EXPECT_EQ(ru.units, 1);
      core_claimed = true;
    }
  }
  EXPECT_TRUE(core_claimed);
}

TEST_F(TinyCluster, SharedNodeHostsMultipleJobs) {
  auto js = make({res("node", 1, {slot(1, {res("core", 2)})})}, 10);
  ASSERT_TRUE(js);
  // 16 cores total; 8 jobs of 2 cores fit simultaneously.
  for (JobId j = 1; j <= 8; ++j) {
    auto r = trav->match(*js, MatchOp::allocate, 0, j);
    ASSERT_TRUE(r) << "job " << j << ": " << r.error().message;
  }
  EXPECT_EQ(total_core_avail(0), 0);
  auto r9 = trav->match(*js, MatchOp::allocate, 0, 9);
  ASSERT_FALSE(r9);
  EXPECT_EQ(r9.error().code, Errc::resource_busy);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(TinyCluster, ExclusiveNodeBlocksSharedUse) {
  auto excl = make({slot(1, {xres("node", 1)})}, 10);
  ASSERT_TRUE(excl);
  auto shared = make({res("node", 1, {slot(1, {res("core", 1)})})}, 10);
  ASSERT_TRUE(shared);
  // Fill all 4 nodes exclusively.
  for (JobId j = 1; j <= 4; ++j) {
    ASSERT_TRUE(trav->match(*excl, MatchOp::allocate, 0, j));
  }
  // No shared core request can land anywhere now, even though the core
  // planners themselves were never touched.
  auto r = trav->match(*shared, MatchOp::allocate, 0, 99);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Errc::resource_busy);
}

TEST_F(TinyCluster, SharedUseBlocksExclusiveClaim) {
  auto shared = make({res("node", 1, {slot(1, {res("core", 1)})})}, 10);
  ASSERT_TRUE(shared);
  ASSERT_TRUE(trav->match(*shared, MatchOp::allocate, 0, 1));
  // The shared job landed on node0 (low-id policy). An exclusive claim on
  // all 4 nodes must fail; 3 nodes remain claimable.
  auto excl1 = make({slot(1, {xres("node", 3)})}, 10);
  ASSERT_TRUE(excl1);
  ASSERT_TRUE(trav->match(*excl1, MatchOp::allocate, 0, 2));
  auto excl2 = make({slot(1, {xres("node", 1)})}, 10);
  ASSERT_TRUE(excl2);
  auto r = trav->match(*excl2, MatchOp::allocate, 0, 3);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Errc::resource_busy);
}

TEST_F(TinyCluster, CancelRestoresEverything) {
  auto js = make({res("node", 2, {slot(1, {res("core", 4), res("memory", 16)})})},
                 10);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  EXPECT_LT(total_core_avail(0), 16);
  ASSERT_TRUE(trav->cancel(1));
  EXPECT_EQ(total_core_avail(0), 16);
  EXPECT_EQ(trav->job_count(), 0u);
  EXPECT_TRUE(trav->verify_filters());
  // Everything is claimable again.
  auto excl = make({slot(1, {xres("node", 4)})}, 10);
  ASSERT_TRUE(excl);
  EXPECT_TRUE(trav->match(*excl, MatchOp::allocate, 0, 2));
}

TEST_F(TinyCluster, CancelUnknownJobFails) {
  EXPECT_EQ(trav->cancel(42).error().code, Errc::not_found);
}

TEST_F(TinyCluster, DuplicateJobIdRejected) {
  auto js = make({res("node", 1, {slot(1, {res("core", 1)})})}, 10);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 7));
  EXPECT_EQ(trav->match(*js, MatchOp::allocate, 0, 7).error().code,
            Errc::exists);
}

TEST_F(TinyCluster, ReserveWhenBusy) {
  auto fill = make({slot(1, {xres("node", 4)})}, 100);
  ASSERT_TRUE(fill);
  ASSERT_TRUE(trav->match(*fill, MatchOp::allocate_orelse_reserve, 0, 1));
  auto js = make({res("node", 1, {slot(1, {res("core", 1)})})}, 10);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 2);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_TRUE(r->reserved);
  EXPECT_EQ(r->at, 100);  // starts right as the blocking job ends
}

TEST_F(TinyCluster, ConservativeBackfillOrder) {
  // j1 takes all nodes [0,100); j2 (all nodes) reserves [100,200);
  // j3 wants 1 core for 50 -> backfills only at t=200?? No: nodes are
  // fully exclusive until 200, so j3 lands at 200. A short job that fits
  // before t=100 cannot exist (cluster full), so backfill respects both.
  auto fill = make({slot(1, {xres("node", 4)})}, 100);
  ASSERT_TRUE(fill);
  ASSERT_TRUE(trav->match(*fill, MatchOp::allocate_orelse_reserve, 0, 1));
  ASSERT_TRUE(trav->match(*fill, MatchOp::allocate_orelse_reserve, 0, 2));
  EXPECT_EQ(trav->find_job(2)->at, 100);
  auto small = make({res("node", 1, {slot(1, {res("core", 1)})})}, 50);
  ASSERT_TRUE(small);
  auto r3 = trav->match(*small, MatchOp::allocate_orelse_reserve, 0, 3);
  ASSERT_TRUE(r3);
  EXPECT_EQ(r3->at, 200);
  // Cancel j1: j2/j3 keep their reservations (conservative), but new jobs
  // can use the freed window.
  ASSERT_TRUE(trav->cancel(1));
  auto r4 = trav->match(*small, MatchOp::allocate_orelse_reserve, 0, 4);
  ASSERT_TRUE(r4);
  EXPECT_EQ(r4->at, 0);
  EXPECT_FALSE(r4->reserved);
}

TEST_F(TinyCluster, RackLevelConstraint) {
  // 2 exclusive nodes spread across 2 racks (paper Figure 4b shape).
  auto js = make({res("rack", 2, {slot(1, {xres("node", 1)})})}, 10);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r) << r.error().message;
  // Each rack must contribute exactly one node.
  int rack0_nodes = 0, rack1_nodes = 0;
  for (const ResourceUnit& ru : r->resources) {
    const graph::Vertex& v = g.vertex(ru.vertex);
    if (g.type_name(v.type) != "node") continue;
    if (v.path.find("rack0") != std::string::npos) ++rack0_nodes;
    if (v.path.find("rack1") != std::string::npos) ++rack1_nodes;
  }
  EXPECT_EQ(rack0_nodes, 1);
  EXPECT_EQ(rack1_nodes, 1);
}

TEST_F(TinyCluster, UnsatisfiableCountFailsFast) {
  auto js = make({res("node", 5, {slot(1, {res("core", 1)})})}, 10);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 1);
  ASSERT_FALSE(r);
  auto sat = trav->match(*js, MatchOp::satisfiability, 0, 2);
  ASSERT_FALSE(sat);
  EXPECT_EQ(sat.error().code, Errc::unsatisfiable);
}

TEST_F(TinyCluster, SatisfiabilityIgnoresLoad) {
  auto fill = make({slot(1, {xres("node", 4)})}, 100);
  ASSERT_TRUE(fill);
  ASSERT_TRUE(trav->match(*fill, MatchOp::allocate, 0, 1));
  auto js = make({slot(1, {xres("node", 4)})}, 10);
  ASSERT_TRUE(js);
  auto sat = trav->match(*js, MatchOp::satisfiability, 0, 2);
  EXPECT_TRUE(sat) << sat.error().message;
  EXPECT_EQ(trav->job_count(), 1u);  // nothing committed
}

TEST_F(TinyCluster, GpuAndMemoryTogether) {
  auto js = make({res("node", 1, {slot(1, {res("core", 2), res("gpu", 1),
                                           res("memory", 16)})})},
                 10);
  ASSERT_TRUE(js);
  // Each node has 1 gpu; 4 jobs exhaust gpus even though cores remain.
  for (JobId j = 1; j <= 4; ++j) {
    ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, j)) << j;
  }
  auto r = trav->match(*js, MatchOp::allocate, 0, 5);
  ASSERT_FALSE(r);
  EXPECT_GT(total_core_avail(0), 0);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(TinyCluster, MemoryPoolPartialClaims) {
  // Each node: 2 memory pools x 16 = 32 units. Claim 24 (one full pool +
  // half the other) twice on different nodes.
  auto js = make({res("node", 1, {slot(1, {res("memory", 24)})})}, 10);
  ASSERT_TRUE(js);
  for (JobId j = 1; j <= 4; ++j) {
    ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, j)) << j;
  }
  // A fifth 24-unit claim on any single node is impossible (8 left/node),
  // but 8 units still fit.
  auto r5 = trav->match(*js, MatchOp::allocate, 0, 5);
  EXPECT_FALSE(r5);
  auto small = make({res("node", 1, {slot(1, {res("memory", 8)})})}, 10);
  ASSERT_TRUE(small);
  EXPECT_TRUE(trav->match(*small, MatchOp::allocate, 0, 6));
}

TEST_F(TinyCluster, StatsTrackVisitsAndPrunes) {
  auto js = make({res("node", 1, {slot(1, {res("core", 4)})})}, 10);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  EXPECT_GT(trav->stats().visits, 0u);
  EXPECT_GT(trav->stats().last_visits, 0u);
  EXPECT_EQ(trav->stats().match_attempts, 1u);
}

TEST_F(TinyCluster, PruningSkipsFullRacks) {
  // Fill rack0's both nodes exclusively, then ask for cores: the rack
  // filter should prune rack0's subtree.
  auto fill_node = make({slot(1, {xres("node", 2)})}, 100);
  ASSERT_TRUE(fill_node);
  ASSERT_TRUE(trav->match(*fill_node, MatchOp::allocate, 0, 1));
  const auto pruned_before = trav->stats().pruned;
  auto js = make({res("node", 1, {slot(1, {res("core", 1)})})}, 10);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 2));
  EXPECT_GT(trav->stats().pruned, pruned_before);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(TinyCluster, WindowLeavingHorizonRejected) {
  auto js = make({res("node", 1, {slot(1, {res("core", 1)})})}, 200000);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Errc::out_of_range);
}

TEST_F(TinyCluster, AllocateWithSatisfiabilityDistinguishesErrors) {
  auto fill = make({slot(1, {xres("node", 4)})}, 100);
  ASSERT_TRUE(fill);
  ASSERT_TRUE(trav->match(*fill, MatchOp::allocate, 0, 1));
  // Same shape again: busy now, but satisfiable later.
  auto busy = trav->match(*fill, MatchOp::allocate_with_satisfiability, 0, 2);
  ASSERT_FALSE(busy);
  EXPECT_EQ(busy.error().code, Errc::resource_busy);
  // Five nodes never exist.
  auto impossible = make({slot(1, {xres("node", 5)})}, 100);
  ASSERT_TRUE(impossible);
  auto unsat =
      trav->match(*impossible, MatchOp::allocate_with_satisfiability, 0, 3);
  ASSERT_FALSE(unsat);
  EXPECT_EQ(unsat.error().code, Errc::unsatisfiable);
  // And when it can run right now, it simply allocates.
  ASSERT_TRUE(trav->cancel(1));
  auto ok = trav->match(*fill, MatchOp::allocate_with_satisfiability, 0, 4);
  EXPECT_TRUE(ok);
}

// --- multi-rack exclusive spread with reservations --------------------------

TEST_F(TinyCluster, ReservationsAccumulate) {
  auto js = make({slot(1, {xres("node", 4)})}, 50);
  ASSERT_TRUE(js);
  for (JobId j = 1; j <= 5; ++j) {
    auto r = trav->match(*js, MatchOp::allocate_orelse_reserve, 0, j);
    ASSERT_TRUE(r) << j;
    EXPECT_EQ(r->at, (j - 1) * 50);
  }
  EXPECT_EQ(trav->job_count(), 5u);
  EXPECT_TRUE(trav->verify_filters());
}

}  // namespace
}  // namespace fluxion::traverser
