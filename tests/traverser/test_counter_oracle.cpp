// Counter-correctness oracle: the obs::PerfMonitor counters must agree
// with independently-tracked ground truth — the traverser's own
// TraverserStats, conservation laws (what a job adds, cancel removes),
// and the enabled/disabled gate.
#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "obs/metrics.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;

constexpr const char* kRecipe = R"(
filters core memory
filter-at cluster rack
cluster count=1
  rack count=2
    node count=2
      core count=4
      memory count=2 size=16
)";

class CounterOracle : public ::testing::Test {
 protected:
  CounterOracle() : g(0, 100000) {
    auto recipe = grug::parse(kRecipe);
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    trav = std::make_unique<Traverser>(g, root, pol);
    obs::set_enabled(true);
    obs::monitor().reset();
  }
  ~CounterOracle() override { obs::set_enabled(false); }

  jobspec::Jobspec simple_job(std::int64_t cores = 2) {
    auto js = make({res("node", 1, {slot(1, {res("core", cores)})})}, 10);
    EXPECT_TRUE(js);
    return *js;
  }

  graph::ResourceGraph g;
  graph::VertexId root = graph::kInvalidVertex;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
};

TEST_F(CounterOracle, VisitsAndPrunedMatchTraverserStats) {
  const auto js = simple_job();
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 1));
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 2));
  const auto& s = trav->stats();
  const auto& m = obs::monitor();
  // The obs counters ride alongside the legacy stats at the same sites.
  EXPECT_EQ(m.trav_visits.value(), s.visits);
  EXPECT_EQ(m.trav_pruned.value(), s.pruned);
  EXPECT_EQ(m.trav_match_attempts.value(), s.match_attempts);
  EXPECT_GT(m.trav_visits.value(), 0u);
}

TEST_F(CounterOracle, PerOpCallAndFailureAccounting) {
  const auto js = simple_job();
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 1));
  // 4 nodes x 4 cores: five 4-core exclusive-node slots cannot all fit
  // now, so a plain allocate of the whole machine plus one more fails.
  auto big = make({res("node", 4, {slot(1, {res("core", 4)})})}, 10);
  ASSERT_TRUE(big);
  ASSERT_FALSE(trav->match(*big, MatchOp::allocate, 0, 2));
  const auto& m = obs::monitor();
  const auto& alloc = m.op(obs::Op::allocate);
  EXPECT_EQ(alloc.calls.value(), 2u);
  EXPECT_EQ(alloc.failures.value(), 1u);
  // Every call lands one latency sample, pass or fail.
  EXPECT_EQ(alloc.latency_us.count(), 2u);
  EXPECT_EQ(m.op(obs::Op::cancel).calls.value(), 0u);
}

TEST_F(CounterOracle, CancelConservesPlannerSpans) {
  const auto js = simple_job();
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 1));
  const auto& m = obs::monitor();
  const auto added = m.planner_span_adds.value();
  const auto multi_added = m.multi_span_adds.value();
  ASSERT_GT(added, 0u);
  ASSERT_GT(multi_added, 0u);
  EXPECT_EQ(m.planner_span_removes.value(), 0u);
  ASSERT_TRUE(trav->cancel(1));
  // Everything the allocation posted must come back out on cancel.
  EXPECT_EQ(m.planner_span_removes.value(), added);
  EXPECT_EQ(m.multi_span_removes.value(), multi_added);
  EXPECT_EQ(m.op(obs::Op::cancel).calls.value(), 1u);
}

TEST_F(CounterOracle, SdfuCommitPerSuccessfulMutation) {
  const auto js = simple_job();
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 1));
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 2));
  const auto& m = obs::monitor();
  EXPECT_EQ(m.sdfu_commits.value(), 2u);
  EXPECT_EQ(m.sdfu_spans_per_commit.count(), 2u);
  // Each commit's filter spans are individually counted.
  EXPECT_EQ(m.sdfu_spans.value(),
            static_cast<std::uint64_t>(
                m.sdfu_spans_per_commit.mean() *
                static_cast<double>(m.sdfu_spans_per_commit.count())));
}

TEST_F(CounterOracle, ReservationProbesAdvanceTime) {
  // Fill the machine, then allocate_orelse_reserve must probe future
  // start times through the planner instead of succeeding now.
  auto fill = make({res("node", 4, {slot(1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(fill);
  ASSERT_TRUE(trav->match(*fill, MatchOp::allocate, 0, 1));
  const auto js = simple_job();
  auto r = trav->match(js, MatchOp::allocate_orelse_reserve, 0, 2);
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->reserved);
  const auto& m = obs::monitor();
  EXPECT_GT(m.multi_avail_time_first.value(), 0u);
  EXPECT_GT(m.multi_atf_rounds.value(), 0u);
}

TEST_F(CounterOracle, DisabledGateLeavesCountersUntouched) {
  obs::set_enabled(false);
  const auto js = simple_job();
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 1));
  ASSERT_TRUE(trav->cancel(1));
  const auto& m = obs::monitor();
  EXPECT_EQ(m.trav_visits.value(), 0u);
  EXPECT_EQ(m.op(obs::Op::allocate).calls.value(), 0u);
  EXPECT_EQ(m.planner_span_adds.value(), 0u);
  EXPECT_EQ(m.sdfu_commits.value(), 0u);
  // The legacy stats are not gated and still advance.
  EXPECT_GT(trav->stats().visits, 0u);
}

TEST_F(CounterOracle, ClearStatsZeroesCountersAndHistograms) {
  const auto js = simple_job();
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 1));
  auto& m = obs::monitor();
  ASSERT_GT(m.trav_visits.value(), 0u);
  ASSERT_GT(m.op(obs::Op::allocate).latency_us.count(), 0u);
  trav->clear_stats();
  m.reset();
  EXPECT_EQ(trav->stats().visits, 0u);
  EXPECT_EQ(trav->stats().match_attempts, 0u);
  EXPECT_EQ(m.trav_visits.value(), 0u);
  EXPECT_EQ(m.trav_match_attempts.value(), 0u);
  EXPECT_EQ(m.planner_span_adds.value(), 0u);
  EXPECT_EQ(m.op(obs::Op::allocate).calls.value(), 0u);
  EXPECT_EQ(m.op(obs::Op::allocate).latency_us.count(), 0u);
  EXPECT_EQ(m.sdfu_spans_per_commit.count(), 0u);
  // Counting resumes cleanly after a clear.
  ASSERT_TRUE(trav->match(js, MatchOp::allocate, 0, 2));
  EXPECT_EQ(m.op(obs::Op::allocate).calls.value(), 1u);
  EXPECT_EQ(m.trav_visits.value(), trav->stats().visits);
}

}  // namespace
}  // namespace fluxion::traverser
