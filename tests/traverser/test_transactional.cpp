// Transactional mutation semantics: every compound traverser mutation
// (match, grow, shrink, extend, restore, cancel) either fully applies or
// leaves the scheduler state exactly as it was — including when an
// internal planner operation fails mid-flight. The unreachable-by-API
// failure branches are driven with the fail_next() fault-injection hook;
// the reachable ones (filter/schedule rejections) are driven through the
// public API alone.
#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"
#include "util/check.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;
using util::Errc;

class Transactional : public ::testing::Test {
 protected:
  Transactional() : g(0, 100000) {
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster rack\n"
        "cluster count=1\n  rack count=2\n    node count=3\n"
        "      core count=4\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    trav = std::make_unique<Traverser>(g, *root, pol);
    baseline_internal_ = util::internal_error_count();
  }

  std::uint64_t new_internal_errors() const {
    return util::internal_error_count() - baseline_internal_;
  }

  VertexId first_of(const char* type) const {
    return g.vertices_of_type(*g.find_type(type)).front();
  }

  std::int64_t nodes_held(JobId id) const {
    const MatchResult* r = trav->find_job(id);
    std::int64_t n = 0;
    for (const auto& ru : r->resources) {
      if (g.type_name(g.vertex(ru.vertex).type) == "node") ++n;
    }
    return n;
  }

  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
  std::uint64_t baseline_internal_ = 0;
};

// --- reachable rejections leave no trace (public API only) ----------------

TEST_F(Transactional, ExtendScheduleRejectionLeavesStateIntact) {
  auto js = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  auto a = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(a) << a.error().message;
  // Fill every node for [100, 150): any extension of job 1 must collide.
  auto blocker = make({slot(6, {xres("node", 1, {res("core", 4)})})}, 50);
  ASSERT_TRUE(blocker);
  ASSERT_TRUE(trav->match(*blocker, MatchOp::allocate_orelse_reserve, 0, 2));
  ASSERT_EQ(trav->find_job(2)->at, 100);

  auto st = trav->extend(1, 50);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error().code, Errc::resource_busy);
  EXPECT_EQ(trav->find_job(1)->duration, 100);
  EXPECT_TRUE(trav->audit());
  EXPECT_EQ(new_internal_errors(), 0u);

  // Once the collision is gone the same extension goes through.
  ASSERT_TRUE(trav->cancel(2));
  auto ok = trav->extend(1, 50);
  ASSERT_TRUE(ok) << ok.error().message;
  EXPECT_EQ(trav->find_job(1)->duration, 150);
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, ExtendFilterRejectionHappensBeforeAnyMutation) {
  // Regression for the old extend order: schedule spans were swapped and
  // bookkeeping updated before the filter rebuild could refuse. A filter
  // span that saturates the extension tail (without touching any schedule
  // planner) must now bounce the extend before anything moves.
  auto js = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));

  planner::PlannerMulti& filter = *g.vertex(first_of("cluster")).filter;
  std::vector<std::int64_t> all(filter.resource_count(), 0);
  for (std::size_t i = 0; i < filter.resource_count(); ++i) {
    all[i] = filter.planner_at(i).total();
  }
  auto foreign = filter.add_span(100, 50, all);
  ASSERT_TRUE(foreign) << foreign.error().message;

  auto st = trav->extend(1, 50);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error().code, Errc::resource_busy);
  EXPECT_EQ(new_internal_errors(), 0u);
  // Nothing moved: window, schedule availability and the job record are
  // exactly as before the call.
  EXPECT_EQ(trav->find_job(1)->duration, 100);
  const VertexId node = trav->find_job(1)->resources.front().vertex;
  EXPECT_TRUE(g.vertex(node).schedule->avail_during(100, 50, 1));

  // Remove the foreign pressure: state must be coherent and the same
  // extend must now succeed.
  ASSERT_TRUE(filter.rem_span(*foreign));
  EXPECT_TRUE(trav->audit());
  auto ok = trav->extend(1, 50);
  ASSERT_TRUE(ok) << ok.error().message;
  EXPECT_EQ(trav->find_job(1)->duration, 150);
  EXPECT_TRUE(trav->audit());
}

// --- injected faults: rollback restores the pre-call state ----------------

TEST_F(Transactional, MatchRollsBackOnClaimFault) {
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  trav->fail_next("apply:claim");
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Errc::internal);
  EXPECT_GE(new_internal_errors(), 1u);
  EXPECT_EQ(trav->job_count(), 0u);
  EXPECT_TRUE(trav->audit());
  auto ok = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(ok) << ok.error().message;
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, MatchRollsBackOnSharedAndFilterFaults) {
  auto js = make({slot(1, {xres("node", 1, {res("core", 2)})})}, 100);
  ASSERT_TRUE(js);
  for (const char* point : {"apply:shared", "apply:filter"}) {
    trav->fail_next(point);
    auto r = trav->match(*js, MatchOp::allocate, 0, 7);
    ASSERT_FALSE(r) << point;
    EXPECT_EQ(r.error().code, Errc::internal) << point;
    EXPECT_EQ(trav->job_count(), 0u) << point;
    EXPECT_TRUE(trav->audit()) << point;
  }
  EXPECT_GE(new_internal_errors(), 2u);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 7));
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, GrowRollsBackAndKeepsOriginalAllocation) {
  auto js = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  auto extra = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(extra);
  trav->fail_next("apply:claim");
  auto r = trav->grow(1, *extra, 0);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Errc::internal);
  EXPECT_EQ(nodes_held(1), 1);  // original allocation untouched
  EXPECT_TRUE(trav->audit());
  auto ok = trav->grow(1, *extra, 0);
  ASSERT_TRUE(ok) << ok.error().message;
  EXPECT_EQ(nodes_held(1), 2);
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, RestoreRollsBackToEmpty) {
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  const MatchResult allocation = *r;
  ASSERT_TRUE(trav->cancel(1));
  trav->fail_next("apply:filter");
  auto again = trav->restore(allocation);
  ASSERT_FALSE(again);
  EXPECT_EQ(again.error().code, Errc::internal);
  EXPECT_EQ(trav->job_count(), 0u);
  EXPECT_TRUE(trav->audit());
  auto ok = trav->restore(allocation);
  ASSERT_TRUE(ok) << ok.error().message;
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, ShrinkRollsBackOnRemovalFault) {
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  const VertexId node = trav->find_job(1)->resources.front().vertex;
  trav->fail_next("shrink:rem");
  auto st = trav->shrink(1, node);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error().code, Errc::internal);
  EXPECT_EQ(nodes_held(1), 2);  // claims restored
  EXPECT_TRUE(trav->audit());
  ASSERT_TRUE(trav->shrink(1, node));
  EXPECT_EQ(nodes_held(1), 1);
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, ShrinkRollsBackOnFilterRebuildFault) {
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  const VertexId node = trav->find_job(1)->resources.front().vertex;
  trav->fail_next("rebuild:add");
  auto st = trav->shrink(1, node);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error().code, Errc::internal);
  // The dropped schedule spans and the prior filter spans are all back.
  EXPECT_EQ(nodes_held(1), 2);
  EXPECT_TRUE(trav->audit());
  ASSERT_TRUE(trav->shrink(1, node));
  EXPECT_EQ(nodes_held(1), 1);
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, ExtendRollsBackOnEachSwapFault) {
  auto js = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  for (const char* point : {"extend:claim", "extend:shared", "extend:filter"}) {
    trav->fail_next(point);
    auto st = trav->extend(1, 50);
    ASSERT_FALSE(st) << point;
    EXPECT_EQ(st.error().code, Errc::internal) << point;
    EXPECT_EQ(trav->find_job(1)->duration, 100) << point;
    EXPECT_TRUE(trav->audit()) << point;
  }
  EXPECT_GE(new_internal_errors(), 3u);
  auto ok = trav->extend(1, 50);
  ASSERT_TRUE(ok) << ok.error().message;
  EXPECT_EQ(trav->find_job(1)->duration, 150);
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, ExtendAfterShrinkAndGrowStaysTransactional) {
  // Mixed elastic history, then a forced failure: the record with claims
  // from different windows must still roll back cleanly.
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  const VertexId node = trav->find_job(1)->resources.front().vertex;
  ASSERT_TRUE(trav->shrink(1, node));
  auto extra = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(extra);
  ASSERT_TRUE(trav->grow(1, *extra, 40));
  ASSERT_TRUE(trav->audit());

  trav->fail_next("extend:filter");
  auto st = trav->extend(1, 50);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error().code, Errc::internal);
  EXPECT_EQ(trav->find_job(1)->duration, 100);
  EXPECT_TRUE(trav->audit());
  ASSERT_TRUE(trav->extend(1, 50));
  EXPECT_EQ(trav->find_job(1)->duration, 150);
  EXPECT_TRUE(trav->audit());
}

// --- the audit hook converts divergence into Errc::internal ---------------

TEST_F(Transactional, AuditHookFlagsForeignCorruption) {
  auto js = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  trav->set_audit(true);
  ASSERT_TRUE(trav->extend(1, 10));  // audited mutation, coherent state

  // Corrupt the state behind the traverser's back: a filter span no job
  // accounts for, overlapping the live job's window so the recount sees
  // it. The next audited mutation must report it.
  planner::PlannerMulti& filter = *g.vertex(first_of("cluster")).filter;
  std::vector<std::int64_t> one(filter.resource_count(), 0);
  one[*filter.index_of("core")] = 1;
  auto foreign = filter.add_span(0, 50, one);
  ASSERT_TRUE(foreign);
  auto st = trav->extend(1, 10);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error().code, Errc::internal);
  EXPECT_GE(new_internal_errors(), 1u);

  ASSERT_TRUE(filter.rem_span(*foreign));
  ASSERT_TRUE(trav->extend(1, 10));
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, CancelReportsCorruptionButStillReleases) {
  auto js = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 2));  // stays live
  trav->set_audit(true);
  // A foreign filter span overlapping the surviving job's window makes
  // the post-cancel audit diverge.
  planner::PlannerMulti& filter = *g.vertex(first_of("cluster")).filter;
  std::vector<std::int64_t> one(filter.resource_count(), 0);
  one[*filter.index_of("core")] = 1;
  auto foreign = filter.add_span(0, 20, one);
  ASSERT_TRUE(foreign);
  auto st = trav->cancel(1);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.error().code, Errc::internal);
  // Job 1 is gone regardless — cancel is best-effort.
  EXPECT_EQ(trav->job_count(), 1u);
  EXPECT_EQ(trav->find_job(1), nullptr);
  ASSERT_TRUE(filter.rem_span(*foreign));
  EXPECT_TRUE(trav->audit());
}

TEST_F(Transactional, FaultHookIsConsumedOnce) {
  auto js = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  trav->fail_next("apply:claim");
  ASSERT_FALSE(trav->match(*js, MatchOp::allocate, 0, 1));
  // The hook fired and cleared itself; the retry is clean.
  auto ok = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(ok) << ok.error().message;
  // An unmatched point never fires.
  trav->fail_next("no-such-point");
  ASSERT_TRUE(trav->extend(1, 10));
  EXPECT_TRUE(trav->audit());
}

}  // namespace
}  // namespace fluxion::traverser
