// Elastic (malleable) jobs, paper §5.5: growing and shrinking live
// allocations.
#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;
using util::Errc;

class ElasticJobs : public ::testing::Test {
 protected:
  ElasticJobs() : g(0, 100000) {
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster rack\n"
        "cluster count=1\n  rack count=2\n    node count=3\n"
        "      core count=4\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    trav = std::make_unique<Traverser>(g, *root, pol);
  }

  std::int64_t nodes_held(JobId id) {
    const MatchResult* r = trav->find_job(id);
    std::int64_t n = 0;
    for (const auto& ru : r->resources) {
      if (g.type_name(g.vertex(ru.vertex).type) == "node") ++n;
    }
    return n;
  }

  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
};

TEST_F(ElasticJobs, GrowAddsNodes) {
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  EXPECT_EQ(nodes_held(1), 2);
  auto extra = make({slot(1, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(extra);
  auto grown = trav->grow(1, *extra, 0);
  ASSERT_TRUE(grown) << grown.error().message;
  EXPECT_EQ(nodes_held(1), 3);
  // Window unchanged.
  EXPECT_EQ(grown->at, 0);
  EXPECT_EQ(grown->duration, 100);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(ElasticJobs, GrowMidRunCoversRemainderOnly) {
  auto js = make({slot(1, {xres("node", 1)})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  auto extra = make({slot(1, {xres("node", 1)})}, 100);
  ASSERT_TRUE(extra);
  ASSERT_TRUE(trav->grow(1, *extra, 60));
  // The grown node is busy only for [60, 100): another job can hold it
  // during [0, 60) — check by counting free node capacity at t=30 vs t=80.
  const auto node_t = *g.find_type("node");
  std::int64_t free30 = 0, free80 = 0;
  for (auto v : g.vertices_of_type(node_t)) {
    free30 += *g.vertex(v).schedule->avail_at(30);
    free80 += *g.vertex(v).schedule->avail_at(80);
  }
  EXPECT_EQ(free30, 5);  // 6 nodes - 1 original claim
  EXPECT_EQ(free80, 4);  // original + grown
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(ElasticJobs, GrowFailsWhenBusy) {
  auto all = make({slot(6, {xres("node", 1)})}, 100);
  ASSERT_TRUE(all);
  ASSERT_TRUE(trav->match(*all, MatchOp::allocate, 0, 1));
  auto js = make({slot(1, {xres("node", 1)})}, 100);
  ASSERT_TRUE(js);
  auto r = trav->grow(1, *js, 0);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Errc::resource_busy);
  EXPECT_EQ(nodes_held(1), 6);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(ElasticJobs, GrowUnknownJobOrExpiredWindow) {
  EXPECT_EQ(trav->grow(9, *make({slot(1, {xres("node", 1)})}, 10), 0)
                .error()
                .code,
            Errc::not_found);
  auto js = make({slot(1, {xres("node", 1)})}, 50);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  auto late = trav->grow(1, *js, 50);
  ASSERT_FALSE(late);
  EXPECT_EQ(late.error().code, Errc::out_of_range);
}

TEST_F(ElasticJobs, ShrinkReleasesSubtree) {
  auto js = make({slot(3, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  // Find one held node and release it.
  VertexId held = graph::kInvalidVertex;
  for (const auto& ru : r->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) == "node") {
      held = ru.vertex;
      break;
    }
  }
  ASSERT_NE(held, graph::kInvalidVertex);
  ASSERT_TRUE(trav->shrink(1, held));
  EXPECT_EQ(nodes_held(1), 2);
  EXPECT_TRUE(trav->verify_filters());
  // The released node is claimable by another job... after the shared-use
  // marks: shrink releases the schedule claim; exclusivity marks from the
  // job's own walk do not block new claims on the node itself.
  EXPECT_EQ(*g.vertex(held).schedule->avail_at(50), 1);
  auto other = make({slot(1, {xres("node", 1)})}, 50);
  ASSERT_TRUE(other);
  EXPECT_TRUE(trav->match(*other, MatchOp::allocate, 0, 2));
}

TEST_F(ElasticJobs, ShrinkErrors) {
  auto js = make({slot(1, {xres("node", 1)})}, 100);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(trav->shrink(9, 0).error().code, Errc::not_found);
  // A vertex the job does not hold.
  VertexId held = graph::kInvalidVertex;
  for (const auto& ru : r->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) == "node") held = ru.vertex;
  }
  const auto nodes = g.vertices_of_type(*g.find_type("node"));
  for (auto v : nodes) {
    if (v != held) {
      EXPECT_EQ(trav->shrink(1, v).error().code, Errc::not_found);
      break;
    }
  }
}

TEST_F(ElasticJobs, ExtendLengthensTheWindow) {
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  ASSERT_TRUE(trav->extend(1, 50));
  const MatchResult* cur = trav->find_job(1);
  EXPECT_EQ(cur->duration, 150);
  // The held nodes stay busy through the extension.
  std::int64_t busy = 0;
  for (auto v : g.vertices_of_type(*g.find_type("node"))) {
    if (*g.vertex(v).schedule->avail_at(120) == 0) ++busy;
  }
  EXPECT_EQ(busy, 2);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(ElasticJobs, ExtendBlockedByLaterReservation) {
  auto js = make({slot(6, {xres("node", 1)})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  // A second machine-wide job reserved right behind it.
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 2));
  auto blocked = trav->extend(1, 10);
  ASSERT_FALSE(blocked);
  EXPECT_EQ(blocked.error().code, Errc::resource_busy);
  // Cancel the reservation; extension now works, and the freed window's
  // release time bookkeeping stays consistent (cancel still succeeds).
  ASSERT_TRUE(trav->cancel(2));
  ASSERT_TRUE(trav->extend(1, 10));
  EXPECT_EQ(trav->find_job(1)->duration, 110);
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(ElasticJobs, ExtendErrors) {
  EXPECT_EQ(trav->extend(9, 10).error().code, Errc::not_found);
  auto js = make({slot(1, {xres("node", 1)})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  EXPECT_EQ(trav->extend(1, 0).error().code, Errc::invalid_argument);
  EXPECT_EQ(trav->extend(1, std::int64_t{1} << 40).error().code,
            Errc::out_of_range);
}

TEST_F(ElasticJobs, ExtendAfterGrowCoversAllClaims) {
  auto js = make({slot(1, {xres("node", 1)})}, 100);
  ASSERT_TRUE(js);
  ASSERT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  ASSERT_TRUE(trav->grow(1, *js, 40));  // second node for [40, 100)
  ASSERT_TRUE(trav->extend(1, 60));     // both claims now end at 160
  std::int64_t busy150 = 0;
  for (auto v : g.vertices_of_type(*g.find_type("node"))) {
    if (*g.vertex(v).schedule->avail_at(150) == 0) ++busy150;
  }
  EXPECT_EQ(busy150, 2);
  EXPECT_TRUE(trav->verify_filters());
  ASSERT_TRUE(trav->cancel(1));
  EXPECT_TRUE(trav->verify_filters());
}

TEST_F(ElasticJobs, GrowThenShrinkThenCancelIsClean) {
  auto js = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  auto extra = make({slot(2, {xres("node", 1, {res("core", 4)})})}, 100);
  ASSERT_TRUE(extra);
  ASSERT_TRUE(trav->grow(1, *extra, 10));
  EXPECT_EQ(nodes_held(1), 4);
  const MatchResult* cur = trav->find_job(1);
  VertexId victim = graph::kInvalidVertex;
  for (const auto& ru : cur->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) == "node") victim = ru.vertex;
  }
  ASSERT_TRUE(trav->shrink(1, victim));
  EXPECT_EQ(nodes_held(1), 3);
  EXPECT_TRUE(trav->verify_filters());
  ASSERT_TRUE(trav->cancel(1));
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g.vertex(v).schedule->span_count(), 0u);
    EXPECT_EQ(g.vertex(v).x_checker->span_count(), 0u);
  }
  EXPECT_TRUE(trav->verify_filters());
}

}  // namespace
}  // namespace fluxion::traverser
