// Property-constraint matching: jobspec `requires` entries against vertex
// properties — how a user pins performance classes, architectures, etc.
#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::require;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

class RequirementsTest : public ::testing::Test {
 protected:
  RequirementsTest() : g(0, 100000) {
    auto recipe = grug::parse(
        "cluster count=1\n  node count=4\n    core count=4\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    nodes = g.vertices_of_type(*g.find_type("node"));
    // node0/1: class 1 + ssd; node2/3: class 2.
    g.vertex(nodes[0]).properties["perf_class"] = "1";
    g.vertex(nodes[1]).properties["perf_class"] = "1";
    g.vertex(nodes[2]).properties["perf_class"] = "2";
    g.vertex(nodes[3]).properties["perf_class"] = "2";
    g.vertex(nodes[0]).properties["local-ssd"] = "true";
    g.vertex(nodes[1]).properties["local-ssd"] = "true";
    trav = std::make_unique<Traverser>(g, *root, pol);
  }
  graph::ResourceGraph g;
  std::vector<graph::VertexId> nodes;
  policy::HighIdPolicy pol;  // deliberately prefers class-2 nodes
  std::unique_ptr<Traverser> trav;
};

TEST_F(RequirementsTest, ValueConstraintOverridesPolicyPreference) {
  // high-id policy would pick node3 (class 2); the constraint forces 1.
  auto js = make(
      {slot(1, {require(xres("node", 1), {"perf_class=1"})})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r) << r.error().message;
  for (const auto& ru : r->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) == "node") {
      EXPECT_EQ(g.vertex(ru.vertex).properties.at("perf_class"), "1");
    }
  }
}

TEST_F(RequirementsTest, ExistenceConstraint) {
  auto js = make({slot(2, {require(xres("node", 1), {"local-ssd"})})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  // Only nodes 0 and 1 carry the property; a third such node is busy AND
  // structurally absent.
  auto more = make({slot(1, {require(xres("node", 1), {"local-ssd"})})}, 60);
  ASSERT_TRUE(more);
  auto r2 = trav->match(*more, MatchOp::allocate_orelse_reserve, 0, 2);
  ASSERT_TRUE(r2);
  EXPECT_TRUE(r2->reserved);
  EXPECT_EQ(r2->at, 60);
}

TEST_F(RequirementsTest, UnmatchableConstraintIsUnsatisfiable) {
  auto js = make(
      {slot(1, {require(xres("node", 1), {"perf_class=9"})})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 1);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, util::Errc::unsatisfiable);
}

TEST_F(RequirementsTest, MultipleConstraintsConjoin) {
  auto js = make({slot(1, {require(xres("node", 1),
                                   {"perf_class=1", "local-ssd"})})},
                 60);
  ASSERT_TRUE(js);
  EXPECT_TRUE(trav->match(*js, MatchOp::allocate, 0, 1));
  auto impossible = make({slot(1, {require(xres("node", 1),
                                           {"perf_class=2", "local-ssd"})})},
                         60);
  ASSERT_TRUE(impossible);
  EXPECT_FALSE(trav->match(*impossible, MatchOp::allocate, 0, 2));
}

TEST_F(RequirementsTest, YamlRoundTrip) {
  const char* doc =
      "resources:\n"
      "  - type: slot\n"
      "    count: 1\n"
      "    with:\n"
      "      - type: node\n"
      "        count: 1\n"
      "        exclusive: true\n"
      "        requires: [perf_class=1, local-ssd]\n";
  auto js = jobspec::Jobspec::from_yaml(doc);
  ASSERT_TRUE(js) << js.error().message;
  ASSERT_EQ(js->resources[0].with[0].requires_.size(), 2u);
  EXPECT_EQ(js->resources[0].with[0].requires_[0], "perf_class=1");
  auto again = jobspec::Jobspec::from_yaml(js->to_yaml());
  ASSERT_TRUE(again) << js->to_yaml();
  EXPECT_EQ(again->to_yaml(), js->to_yaml());
  // And it actually constrains the match.
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  for (const auto& ru : r->resources) {
    if (g.type_name(g.vertex(ru.vertex).type) == "node") {
      EXPECT_TRUE(g.vertex(ru.vertex).properties.contains("local-ssd"));
    }
  }
}

TEST_F(RequirementsTest, QuantityClaimsRespectConstraints) {
  // Tag cores of node0 only; request more tagged cores than it has.
  for (auto c : g.containment_children(nodes[0])) {
    g.vertex(c).properties["isa"] = "avx512";
  }
  auto fits = make({slot(1, {require(res("core", 4), {"isa=avx512"})})}, 60);
  auto too_many =
      make({slot(1, {require(res("core", 5), {"isa=avx512"})})}, 60);
  ASSERT_TRUE(fits);
  ASSERT_TRUE(too_many);
  EXPECT_TRUE(trav->match(*fits, MatchOp::allocate, 0, 1));
  EXPECT_FALSE(trav->match(*too_many, MatchOp::allocate, 0, 2));
}

}  // namespace
}  // namespace fluxion::traverser
