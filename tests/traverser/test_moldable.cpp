// Moldable jobs (paper §5.5): count ranges {min, max} claim as much as is
// available at start time.
#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::res_range;
using jobspec::slot;
using jobspec::xres;

class MoldableTest : public ::testing::Test {
 protected:
  MoldableTest() : g(0, 100000) {
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster\n"
        "cluster count=1\n  node count=4\n    core count=8\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    trav = std::make_unique<Traverser>(g, *root, pol);
  }
  std::int64_t claimed(const MatchResult& r, const char* type) {
    std::int64_t n = 0;
    for (const auto& ru : r.resources) {
      if (g.type_name(g.vertex(ru.vertex).type) == type) n += ru.units;
    }
    return n;
  }
  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
};

TEST_F(MoldableTest, UnitsExpandToMaxWhenIdle) {
  auto js = make({res("node", 1, {slot(1, {res_range("core", 2, 6)})})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(claimed(*r, "core"), 6);
}

TEST_F(MoldableTest, UnitsShrinkTowardMinUnderLoad) {
  // Take 5 of node0's 8 cores; a {min 2, max 6} request on that node gets 3.
  auto filler = make({res("node", 1, {slot(1, {res("core", 5)})})}, 60);
  ASSERT_TRUE(filler);
  ASSERT_TRUE(trav->match(*filler, MatchOp::allocate, 0, 1));
  // Force the moldable job onto node0 by exhausting the other nodes.
  auto block = make({slot(3, {xres("node", 1)})}, 60);
  ASSERT_TRUE(block);
  ASSERT_TRUE(trav->match(*block, MatchOp::allocate, 0, 2));
  auto js = make({res("node", 1, {slot(1, {res_range("core", 2, 6)})})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 3);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(claimed(*r, "core"), 3);
}

TEST_F(MoldableTest, BelowMinStillFails) {
  auto filler = make({res("node", 4, {slot(1, {res("core", 7)})})}, 60);
  ASSERT_TRUE(filler);
  ASSERT_TRUE(trav->match(*filler, MatchOp::allocate, 0, 1));
  // 1 core left per node; a min-2-per-node moldable request must fail.
  auto js = make({res("node", 1, {slot(1, {res_range("core", 2, 4)})})}, 60);
  ASSERT_TRUE(js);
  EXPECT_FALSE(trav->match(*js, MatchOp::allocate, 0, 2));
}

TEST_F(MoldableTest, MoldableNodeInstances) {
  auto js = make({slot(1, {res_range("node", 2, 8, {res("core", 8)})})}, 60);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(claimed(*r, "node"), 4);  // machine only has 4
  // With two nodes busy, the same request gets 2 (the min).
  ASSERT_TRUE(trav->cancel(1));
  auto block = make({slot(2, {xres("node", 1)})}, 60);
  ASSERT_TRUE(block);
  ASSERT_TRUE(trav->match(*block, MatchOp::allocate, 0, 2));
  auto r2 = trav->match(*js, MatchOp::allocate, 0, 3);
  ASSERT_TRUE(r2);
  EXPECT_EQ(claimed(*r2, "node"), 2);
}

TEST_F(MoldableTest, MoldableSlots) {
  // Each task slot needs a whole node; 2..6 tasks requested, 4 nodes exist.
  auto js = make({jobspec::Resource{
      "slot", 2, 6, false, "task", {}, {xres("node", 1)}}}, 60);
  ASSERT_TRUE(js) << js.error().message;
  auto r = trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  EXPECT_EQ(claimed(*r, "node"), 4);
}

TEST_F(MoldableTest, ReservationUsesMinForEarliestStart) {
  // Machine busy until t=100. A {2,4}-node moldable job reserved from now
  // starts when 4 nodes free... the matcher tries the earliest time the
  // request *fits*, which needs only the min.
  auto fill3 = make({slot(3, {xres("node", 1)})}, 100);
  ASSERT_TRUE(fill3);
  ASSERT_TRUE(trav->match(*fill3, MatchOp::allocate, 0, 1));
  auto js = make({slot(1, {res_range("node", 1, 4)})}, 50);
  ASSERT_TRUE(js);
  auto r = trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 2);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->at, 0);                 // one node is free right now
  EXPECT_EQ(claimed(*r, "node"), 1);   // molded down to what exists
}

TEST_F(MoldableTest, YamlRangeRoundTrip) {
  const char* doc =
      "resources:\n"
      "  - type: slot\n"
      "    count: 1\n"
      "    with:\n"
      "      - type: core\n"
      "        count: {min: 2, max: 6}\n";
  auto js = jobspec::Jobspec::from_yaml(doc);
  ASSERT_TRUE(js) << js.error().message;
  EXPECT_EQ(js->resources[0].with[0].count, 2);
  EXPECT_EQ(js->resources[0].with[0].count_max, 6);
  auto again = jobspec::Jobspec::from_yaml(js->to_yaml());
  ASSERT_TRUE(again) << js->to_yaml();
  EXPECT_EQ(again->to_yaml(), js->to_yaml());
}

TEST_F(MoldableTest, InvalidRangeRejected) {
  auto bad = make({slot(1, {res_range("core", 4, 2)})}, 60);
  EXPECT_FALSE(bad);
  EXPECT_FALSE(jobspec::Jobspec::from_yaml(
      "resources:\n  - type: slot\n    count: 1\n    with:\n"
      "      - type: core\n        count: {min: 4, max: 2}\n"));
}

}  // namespace
}  // namespace fluxion::traverser
