// Matcher completeness: when the traverser says "busy", verify by brute
// force that no feasible assignment actually existed. Soundness (no
// oversubscription) is covered elsewhere; completeness failures — refusing
// a placeable job — would silently waste a real cluster, so they deserve
// their own oracle.
//
// The oracle works on whole-node jobspecs over a tiny system: a job of k
// exclusive nodes is placeable at time t iff at least k nodes are
// simultaneously free (no exclusive claim, no shared use) throughout the
// window; with per-node core requests, the free nodes must also have the
// cores.
#include <gtest/gtest.h>

#include <vector>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"
#include "util/rng.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

class CompletenessTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  CompletenessTest() : g(0, 4096) {
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster rack\n"
        "cluster count=1\n  rack count=2\n    node count=3\n"
        "      core count=4\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    trav = std::make_unique<Traverser>(g, *root, pol);
    nodes = g.vertices_of_type(*g.find_type("node"));
  }

  /// Ground truth: can `want_nodes` exclusive nodes with `want_cores`
  /// cores each be placed during [at, at+d)?
  bool feasible(TimePoint at, util::Duration d, int want_nodes,
                std::int64_t want_cores) {
    int free_nodes = 0;
    for (VertexId n : nodes) {
      const graph::Vertex& vx = g.vertex(n);
      if (!vx.schedule->avail_during(at, d, vx.size)) continue;
      if (!vx.x_checker->avail_during(at, d, graph::kSharedUseMax)) continue;
      // All cores must be free too (they are, unless a shared job claimed
      // them — which also marks the node's x_checker; belt and braces).
      std::int64_t cores = 0;
      for (VertexId c : g.containment_children(n)) {
        if (g.type_name(g.vertex(c).type) != "core") continue;
        cores += g.vertex(c)
                     .schedule->avail_resources_during(at, d)
                     .value_or(0);
      }
      if (cores >= want_cores) ++free_nodes;
    }
    return free_nodes >= want_nodes;
  }

  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
  std::vector<VertexId> nodes;
};

TEST_P(CompletenessTest, AllocateNeverRefusesAFeasibleJob) {
  util::Rng rng(GetParam());
  struct Live {
    JobId id;
  };
  std::vector<JobId> live;
  JobId next = 1;
  TimePoint now = 0;
  for (int step = 0; step < 600; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.5 || live.empty()) {
      const int want_nodes = static_cast<int>(rng.uniform(1, 6));
      const std::int64_t want_cores = rng.uniform(1, 4);
      const util::Duration d = rng.uniform(1, 60);
      if (now + d > 4096) continue;
      const bool oracle = feasible(now, d, want_nodes, want_cores);
      auto js = make(
          {slot(want_nodes, {xres("node", 1, {res("core", want_cores)})})},
          d);
      ASSERT_TRUE(js);
      auto r = trav->match(*js, MatchOp::allocate, now, next);
      ASSERT_EQ(static_cast<bool>(r), oracle)
          << "step " << step << " nodes=" << want_nodes
          << " cores=" << want_cores << " d=" << d << " now=" << now
          << (oracle ? " (refused a feasible job)"
                     : " (placed an infeasible job)");
      if (r) live.push_back(next);
      ++next;
    } else if (dice < 0.75) {
      const auto i = rng.index(live.size());
      ASSERT_TRUE(trav->cancel(live[i]));
      live[i] = live.back();
      live.pop_back();
    } else {
      now += rng.uniform(1, 20);
      std::vector<JobId> still;
      for (JobId id : live) {
        const MatchResult* r = trav->find_job(id);
        if (r->at + r->duration <= now) {
          ASSERT_TRUE(trav->cancel(id));
        } else {
          still.push_back(id);
        }
      }
      live = std::move(still);
    }
  }
  EXPECT_TRUE(trav->verify_filters());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompletenessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_F(CompletenessTest, ReserveFindsTheTrueEarliestStart) {
  // Occupy staggered windows, then check allocate_orelse_reserve returns
  // the first time the oracle says is feasible.
  auto fill = [&](int n, TimePoint at, util::Duration d, JobId id) {
    auto js = make({slot(n, {xres("node", 1, {res("core", 4)})})}, d);
    ASSERT_TRUE(js);
    // Commit at a chosen historical time by matching with now = at.
    auto r = trav->match(*js, MatchOp::allocate, at, id);
    ASSERT_TRUE(r) << r.error().message;
  };
  fill(6, 0, 100, 1);   // everything till 100
  fill(4, 100, 50, 2);  // 4 nodes till 150
  fill(6, 150, 30, 3);  // everything till 180

  util::Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const int want_nodes = static_cast<int>(rng.uniform(1, 6));
    const util::Duration d = rng.uniform(1, 80);
    TimePoint expect = -1;
    for (TimePoint t = 0; t + d <= 400; ++t) {
      if (feasible(t, d, want_nodes, 4)) {
        expect = t;
        break;
      }
    }
    ASSERT_GE(expect, 0);
    auto js = make({slot(want_nodes, {xres("node", 1, {res("core", 4)})})},
                   d);
    ASSERT_TRUE(js);
    const JobId id = 100 + trial;
    auto r = trav->match(*js, MatchOp::allocate_orelse_reserve, 0, id);
    ASSERT_TRUE(r);
    EXPECT_EQ(r->at, expect) << "nodes=" << want_nodes << " d=" << d;
    ASSERT_TRUE(trav->cancel(id));  // keep the background fixed
  }
}

}  // namespace
}  // namespace fluxion::traverser
