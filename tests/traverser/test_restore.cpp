// Restart recovery: replaying emitted allocations into a fresh traverser
// reproduces the exact scheduler state.
#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"

namespace fluxion::traverser {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;
using util::Errc;

constexpr const char* kRecipe =
    "filters node core\nfilter-at cluster rack\n"
    "cluster count=1\n  rack count=2\n    node count=2\n"
    "      core count=4\n      memory count=2 size=16\n";

struct World {
  World() : g(0, 100000) {
    auto recipe = grug::parse(kRecipe);
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    trav = std::make_unique<Traverser>(g, *root, pol);
  }
  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<Traverser> trav;
};

TEST(Restore, ReplayedStateBlocksAndFreesLikeTheOriginal) {
  // World A: schedule a mix of jobs; harvest the emitted allocations.
  World a;
  auto excl = make({slot(1, {xres("node", 2)})}, 100);
  auto shared = make({res("node", 1, {slot(1, {res("core", 3),
                                               res("memory", 8)})})},
                     80);
  ASSERT_TRUE(excl);
  ASSERT_TRUE(shared);
  auto r1 = a.trav->match(*excl, MatchOp::allocate, 0, 1);
  auto r2 = a.trav->match(*shared, MatchOp::allocate, 0, 2);
  ASSERT_TRUE(r1);
  ASSERT_TRUE(r2);

  // World B: fresh graph, replay.
  World b;
  ASSERT_TRUE(b.trav->restore(*r1));
  auto restored2 = b.trav->restore(*r2);
  ASSERT_TRUE(restored2) << restored2.error().message;
  EXPECT_EQ(b.trav->job_count(), 2u);
  EXPECT_TRUE(b.trav->verify_filters());

  // Both worlds must now refuse and admit the same follow-up jobs.
  auto probe3 = make({slot(1, {xres("node", 2)})}, 50);
  ASSERT_TRUE(probe3);
  auto in_a = a.trav->match(*probe3, MatchOp::allocate, 0, 10);
  auto in_b = b.trav->match(*probe3, MatchOp::allocate, 0, 10);
  ASSERT_EQ(static_cast<bool>(in_a), static_cast<bool>(in_b));
  // Cancel the restored exclusive job; its nodes free up.
  ASSERT_TRUE(b.trav->cancel(1));
  EXPECT_TRUE(b.trav->match(*excl, MatchOp::allocate, 0, 11));
}

TEST(Restore, ReservationsReplayInTheFuture) {
  World a;
  auto js = make({slot(1, {xres("node", 4)})}, 100);
  ASSERT_TRUE(js);
  auto r1 = a.trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 1);
  auto r2 = a.trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 2);
  ASSERT_TRUE(r1);
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->at, 100);

  World b;
  ASSERT_TRUE(b.trav->restore(*r1));
  ASSERT_TRUE(b.trav->restore(*r2));
  // The replayed future window still blocks its slice of time.
  auto r3 = b.trav->match(*js, MatchOp::allocate_orelse_reserve, 0, 3);
  ASSERT_TRUE(r3);
  EXPECT_EQ(r3->at, 200);
}

TEST(Restore, ConflictingReplayRejected) {
  World a;
  auto js = make({slot(1, {xres("node", 4)})}, 100);
  ASSERT_TRUE(js);
  auto r1 = a.trav->match(*js, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r1);
  World b;
  ASSERT_TRUE(b.trav->restore(*r1));
  MatchResult dup = *r1;
  dup.job = 99;
  auto conflict = b.trav->restore(dup);
  ASSERT_FALSE(conflict);
  EXPECT_EQ(conflict.error().code, Errc::resource_busy);
  // Same id is an exists error.
  auto same_id = b.trav->restore(*r1);
  ASSERT_FALSE(same_id);
  EXPECT_EQ(same_id.error().code, Errc::exists);
}

TEST(Restore, MalformedAllocationsRejected) {
  World b;
  MatchResult bad;
  bad.job = 1;
  bad.at = 0;
  bad.duration = 0;
  EXPECT_EQ(b.trav->restore(bad).error().code, Errc::invalid_argument);
  bad.duration = 10;
  bad.resources.push_back({9999, 1, false});
  EXPECT_EQ(b.trav->restore(bad).error().code, Errc::not_found);
  bad.resources[0] = {0, 50, false};  // more units than the vertex has
  EXPECT_EQ(b.trav->restore(bad).error().code, Errc::invalid_argument);
}

TEST(Restore, ReplayedSharedClaimsRepelExclusiveClaims) {
  // Regression: restoring a shared job must recreate the shared-use marks
  // on its node, or a later exclusive claim would wrongly overlap it.
  World a;
  auto shared = make({res("node", 1, {slot(1, {res("core", 3)})})}, 80);
  ASSERT_TRUE(shared);
  auto r = a.trav->match(*shared, MatchOp::allocate, 0, 1);
  ASSERT_TRUE(r);
  World b;
  ASSERT_TRUE(b.trav->restore(*r));
  auto excl = make({slot(1, {xres("node", 1)})}, 50);
  ASSERT_TRUE(excl);
  auto ea = a.trav->match(*excl, MatchOp::allocate, 0, 2);
  auto eb = b.trav->match(*excl, MatchOp::allocate, 0, 2);
  ASSERT_TRUE(ea);
  ASSERT_TRUE(eb);
  auto node_of = [](const World& w, const MatchResult& m) {
    for (const auto& ru : m.resources) {
      if (w.g.type_name(w.g.vertex(ru.vertex).type) == "node") {
        return w.g.vertex(ru.vertex).path;
      }
    }
    return std::string();
  };
  EXPECT_EQ(node_of(a, *ea), node_of(b, *eb));
  // And on a one-node system the exclusive claim must fail outright.
  World c;
  (void)c;  // (two-node world already proves the disjointness)
}

TEST(Restore, FiltersStayExactAfterReplayAndChurn) {
  World a;
  std::vector<MatchResult> emitted;
  auto shared = make({res("node", 1, {slot(1, {res("core", 2)})})}, 60);
  auto excl = make({slot(1, {xres("node", 1)})}, 90);
  ASSERT_TRUE(shared);
  ASSERT_TRUE(excl);
  for (JobId j = 1; j <= 4; ++j) {
    auto r = a.trav->match(j % 2 == 0 ? *excl : *shared, MatchOp::allocate,
                           0, j);
    ASSERT_TRUE(r) << j;
    emitted.push_back(*r);
  }
  World b;
  for (const auto& r : emitted) {
    ASSERT_TRUE(b.trav->restore(r));
  }
  EXPECT_TRUE(b.trav->verify_filters());
  ASSERT_TRUE(b.trav->cancel(2));
  ASSERT_TRUE(b.trav->cancel(3));
  EXPECT_TRUE(b.trav->verify_filters());
  ASSERT_TRUE(b.trav->cancel(1));
  ASSERT_TRUE(b.trav->cancel(4));
  for (graph::VertexId v = 0; v < b.g.vertex_count(); ++v) {
    EXPECT_EQ(b.g.vertex(v).schedule->span_count(), 0u);
  }
}

}  // namespace
}  // namespace fluxion::traverser
