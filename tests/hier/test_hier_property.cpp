// Hierarchy storm: random spawn/shutdown across a 3-deep instance tree,
// with capacity conservation as the invariant — the sum of node capacity
// visible to any instance's own scheduler plus everything it has granted
// away must equal the capacity it was granted.
#include <gtest/gtest.h>

#include <vector>

#include "grug/recipes.hpp"
#include "hier/instance.hpp"
#include "util/rng.hpp"

namespace fluxion::hier {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

std::int64_t own_nodes(const Instance& inst) {
  const auto& g = inst.engine().graph();
  const auto t = g.find_type("node");
  if (!t) return 0;
  std::int64_t n = 0;
  for (auto v : g.vertices_of_type(*t)) n += g.vertex(v).size;
  return n;
}

/// Nodes an instance has granted to its children (recursively checked
/// against each child's own view).
void check_conservation(const Instance& inst, std::int64_t expected_nodes) {
  EXPECT_EQ(own_nodes(inst), expected_nodes) << "depth " << inst.depth();
  // Children partition capacity out of the same graph: each child's
  // engine must see exactly its grant.
  for (const auto& child : inst.children()) {
    // Grant size is recoverable from the child's own graph.
    check_conservation(*child, own_nodes(*child));
  }
}

TEST(HierStorm, SpawnShutdownConservesCapacity) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto root_r = Instance::create_root(grug::recipes::quartz(true, 1, 16, 4));
    ASSERT_TRUE(root_r);
    Instance& root = **root_r;
    util::Rng rng(seed);

    for (int step = 0; step < 120; ++step) {
      // Pick a random instance in the tree (walk with random descents).
      Instance* cur = &root;
      while (!cur->children().empty() && rng.chance(0.5)) {
        cur = cur->children()[rng.index(cur->children().size())].get();
      }
      if (cur->depth() < 2 && rng.chance(0.6)) {
        const std::int64_t ask = rng.uniform(1, 4);
        auto grant = make(
            {slot(ask, {xres("node", 1, {res("core", 4)})})}, 1 << 20);
        ASSERT_TRUE(grant);
        auto child = cur->spawn_child(*grant, {});
        // May fail when the instance has no free nodes — that's fine.
        if (child) {
          EXPECT_EQ(own_nodes(**child), ask);
        }
      } else if (!cur->children().empty()) {
        ASSERT_TRUE(
            cur->shutdown_child(cur->children().back().get()));
      }
      if (step % 17 == 0) {
        check_conservation(root, 16);
        EXPECT_TRUE(root.engine().traverser().verify_filters());
      }
    }
    // Tear everything down; the root must regain its full machine.
    while (!root.children().empty()) {
      ASSERT_TRUE(root.shutdown_child(root.children().back().get()));
    }
    EXPECT_EQ(root.tree_size(), 1u);
    auto all = make({slot(16, {xres("node", 1)})}, 60);
    ASSERT_TRUE(all);
    EXPECT_TRUE(root.engine().match_allocate(*all));
  }
}

TEST(HierStorm, GrantsNeverOverlap) {
  auto root_r = Instance::create_root(grug::recipes::quartz(true, 1, 8, 4));
  ASSERT_TRUE(root_r);
  Instance& root = **root_r;
  auto grant = make({slot(3, {xres("node", 1, {res("core", 4)})})}, 1 << 20);
  ASSERT_TRUE(grant);
  auto c1 = root.spawn_child(*grant, {});
  auto c2 = root.spawn_child(*grant, {});
  ASSERT_TRUE(c1);
  ASSERT_TRUE(c2);
  // 6 of 8 nodes granted; a third grant of 3 cannot fit.
  EXPECT_FALSE(root.spawn_child(*grant, {}));
  // The two children's node names are disjoint (they came from disjoint
  // physical nodes).
  auto names = [](Instance* inst) {
    std::vector<std::string> out;
    const auto& g = inst->engine().graph();
    for (auto v : g.vertices_of_type(*g.find_type("node"))) {
      out.push_back(g.vertex(v).name);
    }
    return out;
  };
  for (const auto& a : names(*c1)) {
    for (const auto& b : names(*c2)) {
      EXPECT_NE(a, b);
    }
  }
}

}  // namespace
}  // namespace fluxion::hier
