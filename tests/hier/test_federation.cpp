// Federation coordinator: routing policies, escalation, work stealing,
// queue export/import continuity, member labels and cached depths — the
// §5.6 multi-instance subsystem's unit surface.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "grug/recipes.hpp"
#include "hier/federation.hpp"
#include "sim/fed_replay.hpp"
#include "sim/workload.hpp"

namespace fluxion::hier {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

// 1 rack x 16 nodes x 4 cores: divides evenly into 2, 4 or 8 leaves.
grug::Recipe small_system() { return grug::recipes::quartz(true, 1, 16, 4); }

jobspec::Jobspec node_job(std::int64_t nodes, std::int64_t cores = 1,
                          util::Duration duration = 10) {
  auto js = make({slot(nodes, {xres("node", 1, {res("core", cores)})})},
                 duration);
  EXPECT_TRUE(js);
  return *js;
}

std::unique_ptr<Federation> make_fed(FederationConfig cfg) {
  auto fed = Federation::create(small_system(), cfg);
  EXPECT_TRUE(fed) << (fed ? "" : fed.error().message);
  return fed ? std::move(*fed) : nullptr;
}

TEST(Federation, FlatDegenerateIsSingleUnlabelledMember) {
  FederationConfig cfg;
  cfg.children = 1;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);
  EXPECT_EQ(fed->member_count(), 1u);
  EXPECT_EQ(fed->leaf_count(), 1u);
  EXPECT_TRUE(fed->member(0).is_root);
  // No label: the degenerate path must render byte-identically to a
  // plain JobQueue (no "member" attribution anywhere).
  EXPECT_TRUE(fed->member(0).queue->instance_label().empty());

  const FedJobId id = fed->submit(node_job(2));
  EXPECT_EQ(fed->inbox_size(), 1u);
  EXPECT_EQ(fed->find(id), nullptr);  // unrouted until the next pass
  fed->schedule();
  EXPECT_EQ(fed->inbox_size(), 0u);
  ASSERT_NE(fed->find(id), nullptr);
  EXPECT_EQ(fed->stats().routed, 1u);
  auto end = fed->run_to_completion();
  ASSERT_TRUE(end);
  const queue::Job* job = fed->find_job(id);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, queue::JobState::completed);
}

TEST(Federation, RoundRobinCyclesOverLeaves) {
  FederationConfig cfg;
  cfg.children = 4;
  cfg.route = RoutePolicy::round_robin;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);
  EXPECT_EQ(fed->leaf_count(), 4u);

  std::vector<FedJobId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(fed->submit(node_job(1)));
  fed->schedule();
  for (int i = 0; i < 8; ++i) {
    const Federation::JobRef* ref = fed->find(ids[static_cast<std::size_t>(i)]);
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(ref->member, static_cast<std::size_t>(i % 4)) << "job " << i;
  }
  EXPECT_EQ(fed->stats().routed, 8u);
  EXPECT_EQ(fed->stats().escalated, 0u);
}

TEST(Federation, LeastLoadedBalancesPendingWork) {
  FederationConfig cfg;
  cfg.children = 2;
  cfg.route = RoutePolicy::least_loaded;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);

  // Four whole-partition jobs: the router sees the pending work pile up
  // member by member as the inbox drains, so they alternate.
  std::vector<FedJobId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(fed->submit(node_job(8)));
  fed->schedule();
  std::size_t counts[2] = {0, 0};
  for (const FedJobId id : ids) {
    const Federation::JobRef* ref = fed->find(id);
    ASSERT_NE(ref, nullptr);
    ASSERT_LT(ref->member, 2u);
    ++counts[ref->member];
  }
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(Federation, LocalityPinsIdenticalSpecsToOneLeaf) {
  FederationConfig cfg;
  cfg.children = 4;
  cfg.route = RoutePolicy::locality;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);

  std::vector<FedJobId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(fed->submit(node_job(1)));
  fed->schedule();
  std::set<std::size_t> homes;
  for (const FedJobId id : ids) {
    const Federation::JobRef* ref = fed->find(id);
    ASSERT_NE(ref, nullptr);
    homes.insert(ref->member);
  }
  EXPECT_EQ(homes.size(), 1u) << "identical specs spread across leaves";
}

TEST(Federation, UnsatisfiableEverywhereEscalatesToRootAndRejects) {
  FederationConfig cfg;
  cfg.children = 4;  // 4 nodes per leaf; root keeps no remainder
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);

  const FedJobId big = fed->submit(node_job(20));  // > whole machine
  fed->schedule();
  const Federation::JobRef* ref = fed->find(big);
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(ref->member, fed->member_count() - 1);
  EXPECT_TRUE(fed->member(ref->member).is_root);
  EXPECT_EQ(fed->stats().escalated, 1u);
  auto end = fed->run_to_completion();
  ASSERT_TRUE(end);
  const queue::Job* job = fed->find_job(big);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, queue::JobState::rejected);
  // The member-attributed account names the escalation queue.
  EXPECT_NE(fed->explain(big).find("root"), std::string::npos);
}

TEST(Federation, StealPassRebalancesLocalityHotspot) {
  FederationConfig cfg;
  cfg.children = 2;
  cfg.route = RoutePolicy::locality;  // piles identical specs on one leaf
  cfg.steal_threshold = 1.5;
  cfg.steal_batch = 8;
  cfg.eventlog = true;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);

  std::vector<FedJobId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(fed->submit(node_job(8)));
  fed->schedule();
  EXPECT_GT(fed->stats().stolen, 0u);
  EXPECT_GT(fed->stats().steal_passes, 0u);
  // Both leaves now hold work, and every federation id still resolves.
  std::set<std::size_t> owners;
  for (const FedJobId id : ids) {
    const Federation::JobRef* ref = fed->find(id);
    ASSERT_NE(ref, nullptr);
    owners.insert(ref->member);
  }
  EXPECT_EQ(owners.size(), 2u);

  auto end = fed->run_to_completion();
  ASSERT_TRUE(end);
  for (const FedJobId id : ids) {
    const queue::Job* job = fed->find_job(id);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state, queue::JobState::completed);
  }
  // Eventlog continuity: the moved jobs carry export/import markers and
  // member attribution.
  const std::string log = fed->eventlog_jsonl();
  EXPECT_NE(log.find("\"ev\":\"export\""), std::string::npos);
  EXPECT_NE(log.find("\"ev\":\"import\""), std::string::npos);
  EXPECT_NE(log.find("\"member\":"), std::string::npos);
}

TEST(Federation, NoStealBelowThreshold) {
  FederationConfig cfg;
  cfg.children = 2;
  cfg.route = RoutePolicy::round_robin;
  cfg.steal_threshold = 1.5;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);
  for (int i = 0; i < 6; ++i) (void)fed->submit(node_job(8));
  fed->schedule();  // round-robin keeps the backlogs balanced
  EXPECT_EQ(fed->stats().stolen, 0u);
}

TEST(Federation, TwoLevelTreeSpawnsGrandchildrenWithCachedDepth) {
  FederationConfig cfg;
  cfg.children = 2;
  cfg.levels = 2;  // 4 leaves behind 2 mid instances
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);
  EXPECT_EQ(fed->leaf_count(), 4u);
  for (std::size_t i = 0; i < fed->member_count(); ++i) {
    const Member& m = fed->member(i);
    if (m.is_root) {
      EXPECT_EQ(m.instance->depth(), 0u);
    } else {
      // Leaves hang off mid-level instances: depth cached at spawn.
      EXPECT_EQ(m.instance->depth(), 2u) << m.name;
    }
  }
  // The tree still schedules: run a small stream through it.
  std::vector<FedJobId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(fed->submit(node_job(1)));
  auto end = fed->run_to_completion();
  ASSERT_TRUE(end);
  for (const FedJobId id : ids) {
    const queue::Job* job = fed->find_job(id);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->state, queue::JobState::completed);
  }
}

TEST(Federation, MembersCarryInstanceLabels) {
  FederationConfig cfg;
  cfg.children = 2;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);
  EXPECT_EQ(fed->member(0).queue->instance_label(), "child0");
  EXPECT_EQ(fed->member(1).queue->instance_label(), "child1");
  EXPECT_EQ(fed->member(2).queue->instance_label(), "root");
}

TEST(Federation, ExplainReportsUnroutedThenMember) {
  FederationConfig cfg;
  cfg.children = 2;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);
  const FedJobId id = fed->submit(node_job(1));
  EXPECT_NE(fed->explain(id).find("unrouted"), std::string::npos);
  fed->schedule();
  const std::string after = fed->explain(id);
  EXPECT_NE(after.find("child"), std::string::npos);
  EXPECT_EQ(fed->explain(9999).find("unrouted"), std::string::npos);
}

TEST(Federation, DirectMatchNamesTheMember) {
  FederationConfig cfg;
  cfg.children = 2;
  auto fed = make_fed(cfg);
  ASSERT_NE(fed, nullptr);
  auto r = fed->match_allocate(node_job(1));
  ASSERT_TRUE(r);
  EXPECT_EQ(fed->last_member().substr(0, 5), "child");
  bool member_arg = false;
  for (const auto& [k, v] : fed->last_args()) member_arg |= k == "member";
  EXPECT_TRUE(member_arg);

  auto bad = fed->match_allocate(node_job(20));
  EXPECT_FALSE(bad);
  EXPECT_EQ(fed->last_member(), "root");  // escalated, still failed
}

}  // namespace
}  // namespace fluxion::hier
