// JGF round-trip + hierarchical instances (paper §5.6).
#include "hier/instance.hpp"

#include <gtest/gtest.h>

#include "grug/recipes.hpp"
#include "writers/jgf.hpp"
#include "writers/jgf_reader.hpp"

namespace fluxion::hier {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

TEST(JgfRoundTrip, WholeGraphSurvives) {
  graph::ResourceGraph g(0, 100000);
  auto recipe = grug::parse(
      "cluster count=1\n  rack count=2\n    node count=2\n"
      "      core count=4\n      memory count=2 size=16\n");
  ASSERT_TRUE(recipe);
  ASSERT_TRUE(grug::build(g, *recipe));
  g.vertex(*g.find_by_path("/cluster0/rack0/node0"))
      .properties["perf_class"] = "3";

  const std::string jgf = writers::graph_to_jgf(g).pretty();
  auto back = writers::read_jgf(jgf, 0, 100000);
  ASSERT_TRUE(back) << back.error().message;
  graph::ResourceGraph& g2 = *back->graph;
  EXPECT_EQ(g2.live_vertex_count(), g.live_vertex_count());
  EXPECT_EQ(g2.vertex(back->root).name, "cluster0");
  // Paths, sizes and properties all round-trip.
  auto n0 = g2.find_by_path("/cluster0/rack0/node0");
  ASSERT_TRUE(n0.has_value());
  EXPECT_EQ(g2.vertex(*n0).properties.at("perf_class"), "3");
  auto mem = g2.find_by_path("/cluster0/rack0/node0/memory0");
  ASSERT_TRUE(mem.has_value());
  EXPECT_EQ(g2.vertex(*mem).size, 16);
  EXPECT_EQ(g2.vertex(*mem).schedule->total(), 16);
  const auto counts = g2.subtree_counts(back->root);
  EXPECT_EQ(counts.at(*g2.find_type("core")), 16);
  EXPECT_TRUE(g2.validate());
}

TEST(JgfRoundTrip, NonContainmentEdgesSurvive) {
  graph::ResourceGraph g(0, 1000);
  const auto cluster = g.add_vertex("cluster", "cluster", 0, 1);
  const auto rack = g.add_vertex("rack", "rack", 0, 1);
  const auto rabbit = g.add_vertex("rabbit", "rabbit", 0, 1);
  ASSERT_TRUE(g.add_containment(cluster, rack));
  ASSERT_TRUE(g.add_containment(rack, rabbit));
  ASSERT_TRUE(g.add_edge(cluster, rabbit, g.intern_subsystem("storage"),
                         g.contains_rel()));
  auto back = writers::read_jgf(writers::graph_to_jgf(g).dump(), 0, 1000);
  ASSERT_TRUE(back) << back.error().message;
  graph::ResourceGraph& g2 = *back->graph;
  const auto storage = g2.intern_subsystem("storage");
  EXPECT_EQ(g2.children(back->root, storage, g2.contains_rel()).size(), 1u);
}

TEST(JgfRoundTrip, MalformedDocumentsRejected) {
  EXPECT_FALSE(writers::read_jgf("not json", 0, 100));
  EXPECT_FALSE(writers::read_jgf("{}", 0, 100));
  EXPECT_FALSE(writers::read_jgf(R"({"graph":{"nodes":[{"id":"1"}]}})", 0,
                                 100));
  // Edge to an unknown node.
  EXPECT_FALSE(writers::read_jgf(
      R"({"graph":{"nodes":[{"id":"1","metadata":{"type":"node"}}],
          "edges":[{"source":"1","target":"9"}]}})",
      0, 100));
  // Two containment roots.
  EXPECT_FALSE(writers::read_jgf(
      R"({"graph":{"nodes":[{"id":"1","metadata":{"type":"a"}},
                            {"id":"2","metadata":{"type":"b"}}],
          "edges":[]}})",
      0, 100));
}

class InstanceTree : public ::testing::Test {
 protected:
  InstanceTree() {
    auto r = Instance::create_root(grug::recipes::quartz(true, 1, 8, 4));
    EXPECT_TRUE(r);
    root = std::move(*r);
  }
  std::unique_ptr<Instance> root;
  core::Options opts;
};

TEST_F(InstanceTree, SpawnGrantsResources) {
  auto grant = make({slot(4, {xres("node", 1, {res("core", 4)})})}, 86400);
  ASSERT_TRUE(grant);
  auto child = root->spawn_child(*grant, opts);
  ASSERT_TRUE(child) << child.error().message;
  EXPECT_EQ((*child)->depth(), 1u);
  EXPECT_EQ(root->tree_size(), 2u);
  // Child sees 4 nodes x 4 cores.
  auto& cg = (*child)->engine().graph();
  EXPECT_EQ(cg.vertices_of_type(*cg.find_type("node")).size(), 4u);
  const auto counts = cg.subtree_counts((*child)->engine().root());
  EXPECT_EQ(counts.at(*cg.find_type("core")), 16);
}

TEST_F(InstanceTree, ChildSchedulesInsideGrant) {
  auto grant = make({slot(4, {xres("node", 1, {res("core", 4)})})}, 86400);
  ASSERT_TRUE(grant);
  auto child = root->spawn_child(*grant, opts);
  ASSERT_TRUE(child);
  auto tiny = make({res("node", 1, {slot(1, {res("core", 1)})})}, 60);
  ASSERT_TRUE(tiny);
  int placed = 0;
  while ((*child)->engine().match_allocate(*tiny)) ++placed;
  EXPECT_EQ(placed, 16);  // 4 nodes x 4 cores
}

TEST_F(InstanceTree, ParentCapacityShrinksByGrant) {
  auto grant = make({slot(6, {xres("node", 1)})}, 86400);
  ASSERT_TRUE(grant);
  ASSERT_TRUE(root->spawn_child(*grant, opts));
  auto probe = make({slot(3, {xres("node", 1)})}, 60);
  ASSERT_TRUE(probe);
  EXPECT_FALSE(root->engine().match_allocate(*probe));  // only 2 left
  auto small = make({slot(2, {xres("node", 1)})}, 60);
  ASSERT_TRUE(small);
  EXPECT_TRUE(root->engine().match_allocate(*small));
}

TEST_F(InstanceTree, ThreeLevelHierarchy) {
  auto grant = make({slot(6, {xres("node", 1, {res("core", 4)})})}, 86400);
  ASSERT_TRUE(grant);
  auto mid = root->spawn_child(*grant, opts);
  ASSERT_TRUE(mid);
  auto subgrant = make({slot(2, {xres("node", 1, {res("core", 4)})})},
                       43200);
  ASSERT_TRUE(subgrant);
  auto leaf = (*mid)->spawn_child(*subgrant, opts);
  ASSERT_TRUE(leaf) << leaf.error().message;
  EXPECT_EQ((*leaf)->depth(), 2u);
  EXPECT_EQ(root->tree_size(), 3u);
  auto& lg = (*leaf)->engine().graph();
  EXPECT_EQ(lg.vertices_of_type(*lg.find_type("node")).size(), 2u);
}

TEST_F(InstanceTree, ShutdownReleasesGrant) {
  auto grant = make({slot(8, {xres("node", 1)})}, 86400);
  ASSERT_TRUE(grant);
  auto child = root->spawn_child(*grant, opts);
  ASSERT_TRUE(child);
  auto probe = make({slot(1, {xres("node", 1)})}, 60);
  ASSERT_TRUE(probe);
  EXPECT_FALSE(root->engine().match_allocate(*probe));
  ASSERT_TRUE(root->shutdown_child(*child));
  EXPECT_EQ(root->tree_size(), 1u);
  EXPECT_TRUE(root->engine().match_allocate(*probe));
}

TEST_F(InstanceTree, ShutdownIsRecursive) {
  auto grant = make({slot(6, {xres("node", 1, {res("core", 4)})})}, 86400);
  ASSERT_TRUE(grant);
  auto mid = root->spawn_child(*grant, opts);
  ASSERT_TRUE(mid);
  auto subgrant = make({slot(2, {xres("node", 1, {res("core", 4)})})},
                       43200);
  ASSERT_TRUE(subgrant);
  ASSERT_TRUE((*mid)->spawn_child(*subgrant, opts));
  ASSERT_TRUE(root->shutdown_child(*mid));
  EXPECT_EQ(root->tree_size(), 1u);
  // Everything is back.
  auto all = make({slot(8, {xres("node", 1)})}, 60);
  ASSERT_TRUE(all);
  EXPECT_TRUE(root->engine().match_allocate(*all));
}

TEST_F(InstanceTree, ShutdownForeignChildFails) {
  auto grant = make({slot(2, {xres("node", 1)})}, 86400);
  ASSERT_TRUE(grant);
  auto c1 = root->spawn_child(*grant, opts);
  ASSERT_TRUE(c1);
  auto c2 = (*c1)->spawn_child(
      *make({slot(1, {xres("node", 1)})}, 3600), opts);
  ASSERT_TRUE(c2);
  EXPECT_FALSE(root->shutdown_child(*c2));  // grandchild, not child
}

TEST(GrantJgf, QuantityClaimsShrinkPools) {
  // A grant of 8 units from a 16-unit memory pool gives the child a pool
  // of exactly 8.
  graph::ResourceGraph g(0, 100000);
  auto recipe = grug::parse(
      "cluster count=1\n  node count=1\n    core count=4\n"
      "    memory count=1 size=16\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  policy::LowIdPolicy pol;
  traverser::Traverser trav(g, *root, pol);
  auto js = make({res("node", 1, {slot(1, {res("memory", 8)})})}, 3600);
  ASSERT_TRUE(js);
  auto grant = trav.match(*js, traverser::MatchOp::allocate, 0, 1);
  ASSERT_TRUE(grant);
  auto child = writers::read_jgf(grant_to_jgf(g, *grant), 0, 100000);
  ASSERT_TRUE(child) << child.error().message;
  const auto counts = child->graph->subtree_counts(child->root);
  EXPECT_EQ(counts.at(*child->graph->find_type("memory")), 8);
}

}  // namespace
}  // namespace fluxion::hier
