// grant_to_jgf round-trip property: a grant serialized out of the parent
// graph and rebuilt as a child graph must preserve the resource totals
// per type, the parent-side vertex names, and every vertex's status —
// the contract the federation's grant -> JGF -> child-instance chain
// (paper §5.6) rests on.
#include <map>
#include <string_view>
#include <string>

#include <gtest/gtest.h>

#include "grug/recipes.hpp"
#include "hier/instance.hpp"
#include "util/rng.hpp"

namespace fluxion::hier {
namespace {

using jobspec::make;
using jobspec::res;
using jobspec::slot;
using jobspec::xres;

/// (vertex count, unit sum) per resource type, skipping the synthetic
/// cluster root so parent-side claims and child graphs are comparable.
std::map<std::string, std::pair<std::size_t, std::int64_t>> type_totals(
    const graph::ResourceGraph& g, bool skip_cluster) {
  std::map<std::string, std::pair<std::size_t, std::int64_t>> out;
  for (const char* type : {"cluster", "rack", "node", "core"}) {
    if (skip_cluster && std::string_view(type) == "cluster") continue;
    const auto t = g.find_type(type);
    if (!t) continue;
    auto& [n, units] = out[type];
    for (const auto v : g.vertices_of_type(*t)) {
      ++n;
      units += g.vertex(v).size;
    }
  }
  return out;
}

TEST(GrantRoundTrip, PreservesTotalsPathsAndStatus) {
  util::Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    auto root_r =
        Instance::create_root(grug::recipes::quartz(true, 1, 16, 4));
    ASSERT_TRUE(root_r);
    Instance& root = **root_r;
    auto& g = root.engine().graph();

    const std::int64_t ask = rng.uniform(2, 8);
    auto grant =
        make({slot(ask, {xres("node", 1, {res("core", 4)})})}, 1 << 20);
    ASSERT_TRUE(grant);
    auto r = root.engine().match_allocate(*grant);
    ASSERT_TRUE(r) << r.error().message;

    // Flip some granted capacity after allocation: serialization must
    // carry the live status, not assume everything is up.
    const auto node_type = g.find_type("node");
    ASSERT_TRUE(node_type);
    for (const auto v : g.vertices_of_type(*node_type)) {
      if (rng.chance(0.25)) {
        ASSERT_TRUE(g.set_status(v, graph::ResourceStatus::drained));
      }
    }

    const std::string jgf = grant_to_jgf(g, *r);
    auto child = core::ResourceQuery::create_from_jgf(
        jgf, {}, {"node", "core"}, {"cluster"});
    ASSERT_TRUE(child) << child.error().message;
    const auto& cg = (*child)->graph();

    // Totals: exactly the granted nodes and their full core subtrees.
    const auto totals = type_totals(cg, /*skip_cluster=*/true);
    ASSERT_TRUE(totals.count("node"));
    ASSERT_TRUE(totals.count("core"));
    EXPECT_EQ(totals.at("node").first, static_cast<std::size_t>(ask));
    EXPECT_EQ(totals.at("node").second, ask);
    EXPECT_EQ(totals.at("core").second, ask * 4);

    // Identity: the grant re-roots the child under a synthetic cluster
    // ("/cluster0/<node>"), but every node keeps its parent-side *name*,
    // and its live status rides along per vertex — not just in
    // aggregate.
    std::map<std::string, graph::ResourceStatus> parent_status;
    for (const auto v : g.vertices_of_type(*node_type)) {
      parent_status[g.vertex(v).name] = g.vertex(v).status;
    }
    std::size_t child_drained = 0;
    for (const auto v : cg.vertices_of_type(*cg.find_type("node"))) {
      const auto& vert = cg.vertex(v);
      EXPECT_EQ(vert.path, "/cluster0/" + vert.name);
      const auto it = parent_status.find(vert.name);
      ASSERT_NE(it, parent_status.end()) << vert.name;
      EXPECT_EQ(vert.status, it->second) << vert.name;
      if (vert.status == graph::ResourceStatus::drained) ++child_drained;
    }
    // A drained node drains its subtree: node + 4 cores = 5 vertices.
    EXPECT_EQ(cg.status_count(graph::ResourceStatus::drained),
              child_drained * 5);

    // Second hop: serializing a grant inside the child and rebuilding
    // again still preserves totals (the levels=2 chain).
    auto subgrant =
        make({slot(1, {xres("node", 1, {res("core", 4)})})}, 1 << 20);
    ASSERT_TRUE(subgrant);
    auto sub = (*child)->match_allocate(*subgrant);
    if (sub) {
      const std::string sub_jgf = grant_to_jgf(cg, *sub);
      auto grandchild = core::ResourceQuery::create_from_jgf(
          sub_jgf, {}, {"node", "core"}, {"cluster"});
      ASSERT_TRUE(grandchild) << grandchild.error().message;
      const auto sub_totals =
          type_totals((*grandchild)->graph(), /*skip_cluster=*/true);
      EXPECT_EQ(sub_totals.at("node").second, 1);
      EXPECT_EQ(sub_totals.at("core").second, 4);
    }
  }
}

}  // namespace
}  // namespace fluxion::hier
