// Node-centric baseline: unit tests + the cross-validation property —
// for whole-node workloads under low-id, the graph matcher and the
// baseline must produce byte-identical schedules.
#include "baseline/node_centric.hpp"

#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"
#include "util/rng.hpp"

namespace fluxion::baseline {
namespace {

using util::Errc;

TEST(NodeCentric, AllocateFirstFitLowestIndex) {
  NodeCentricScheduler s(4, 1000);
  auto a = s.allocate(2, 100, 0, 1);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->nodes, (std::vector<int>{0, 1}));
  auto b = s.allocate(2, 100, 0, 2);
  ASSERT_TRUE(b);
  EXPECT_EQ(b->nodes, (std::vector<int>{2, 3}));
  EXPECT_FALSE(s.allocate(1, 100, 0, 3));
  EXPECT_EQ(s.free_nodes_during(0, 100), 0);
  EXPECT_EQ(s.free_nodes_during(100, 100), 4);
}

TEST(NodeCentric, ReserveFindsEarliestEnd) {
  NodeCentricScheduler s(4, 10000);
  ASSERT_TRUE(s.allocate(4, 100, 0, 1));
  auto r = s.allocate_orelse_reserve(2, 50, 0, 2);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->start, 100);
  EXPECT_TRUE(r->reserved);
}

TEST(NodeCentric, CancelFrees) {
  NodeCentricScheduler s(2, 1000);
  auto a = s.allocate(2, 100, 0, 1);
  ASSERT_TRUE(a);
  ASSERT_TRUE(s.cancel(1));
  EXPECT_TRUE(s.allocate(2, 100, 0, 2));
  EXPECT_FALSE(s.cancel(1));
}

TEST(NodeCentric, ErrorCases) {
  NodeCentricScheduler s(2, 100);
  EXPECT_EQ(s.allocate(3, 10, 0, 1).error().code, Errc::unsatisfiable);
  EXPECT_EQ(s.allocate(0, 10, 0, 1).error().code, Errc::invalid_argument);
  EXPECT_EQ(s.allocate(1, 200, 0, 1).error().code, Errc::out_of_range);
  ASSERT_TRUE(s.allocate(1, 10, 0, 1));
  EXPECT_EQ(s.allocate(1, 10, 0, 1).error().code, Errc::invalid_argument);
}

// --- cross-validation against the graph matcher -----------------------------

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, GraphMatcherEqualsNodeCentricOnWholeNodeJobs) {
  constexpr int kNodes = 12;
  constexpr util::Duration kHorizon = 1 << 16;
  graph::ResourceGraph g(0, kHorizon);
  auto recipe = grug::parse(
      "filters node core\nfilter-at cluster\n"
      "cluster count=1\n  node count=" + std::to_string(kNodes) +
      "\n    core count=4\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  policy::LowIdPolicy pol;
  traverser::Traverser trav(g, *root, pol);
  NodeCentricScheduler base(kNodes, kHorizon);
  const auto nodes = g.vertices_of_type(*g.find_type("node"));

  util::Rng rng(GetParam());
  std::vector<traverser::JobId> live;
  traverser::JobId next = 1;
  util::TimePoint now = 0;
  for (int step = 0; step < 400; ++step) {
    const double dice = rng.uniform01();
    if (dice < 0.55 || live.empty()) {
      const int want = static_cast<int>(rng.uniform(1, kNodes + 1));
      const util::Duration d = rng.uniform(1, 100);
      const bool reserve = rng.chance(0.5);
      auto js = jobspec::make(
          {jobspec::slot(want, {jobspec::xres("node", 1,
                                              {jobspec::res("core", 4)})})},
          d);
      ASSERT_TRUE(js);
      auto rg = trav.match(*js,
                           reserve
                               ? traverser::MatchOp::allocate_orelse_reserve
                               : traverser::MatchOp::allocate,
                           now, next);
      auto rb = reserve ? base.allocate_orelse_reserve(want, d, now, next)
                        : base.allocate(want, d, now, next);
      ASSERT_EQ(static_cast<bool>(rg), static_cast<bool>(rb))
          << "step " << step << " want=" << want << " d=" << d
          << " now=" << now << " reserve=" << reserve
          << (rg ? "" : (" graph: " + rg.error().message))
          << (rb ? "" : (" base: " + rb.error().message));
      if (rg) {
        ASSERT_EQ(rg->at, rb->start) << "step " << step;
        // Same node sets: map baseline indices onto graph vertices.
        std::vector<int> picked;
        for (const auto& ru : rg->resources) {
          if (g.type_name(g.vertex(ru.vertex).type) != "node") continue;
          for (int i = 0; i < kNodes; ++i) {
            if (nodes[static_cast<std::size_t>(i)] == ru.vertex) {
              picked.push_back(i);
            }
          }
        }
        std::sort(picked.begin(), picked.end());
        ASSERT_EQ(picked, rb->nodes) << "step " << step;
        live.push_back(next);
      }
      ++next;
    } else if (dice < 0.8) {
      const auto i = rng.index(live.size());
      ASSERT_TRUE(trav.cancel(live[i]));
      ASSERT_TRUE(base.cancel(live[i]));
      live[i] = live.back();
      live.pop_back();
    } else {
      now += rng.uniform(1, 40);
      std::vector<traverser::JobId> still;
      for (auto id : live) {
        const auto* r = trav.find_job(id);
        if (r->at + r->duration <= now) {
          ASSERT_TRUE(trav.cancel(id));
          ASSERT_TRUE(base.cancel(id));
        } else {
          still.push_back(id);
        }
      }
      live = std::move(still);
    }
  }
  EXPECT_EQ(trav.job_count(), base.job_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace fluxion::baseline
