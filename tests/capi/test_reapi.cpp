// C ABI tests: drive the REAPI exactly as a foreign embedder would.
#include "capi/reapi.h"

#include <gtest/gtest.h>

#include <string>

namespace {

constexpr const char* kGrug =
    "filters core\nfilter-at cluster\n"
    "cluster count=1\n  node count=2\n    core count=4\n";

constexpr const char* kJobspec =
    "resources:\n"
    "  - type: node\n"
    "    count: 1\n"
    "    with:\n"
    "      - type: slot\n"
    "        count: 1\n"
    "        with:\n"
    "          - type: core\n"
    "            count: 4\n"
    "attributes:\n"
    "  system:\n"
    "    duration: 100\n";

class ReapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char* err = nullptr;
    ctx = reapi_create(kGrug, "low-id", &err);
    ASSERT_NE(ctx, nullptr) << (err != nullptr ? err : "?");
    reapi_free_string(err);
  }
  void TearDown() override { reapi_destroy(ctx); }
  reapi_ctx_t* ctx = nullptr;
};

TEST_F(ReapiTest, CreateRejectsBadInputs) {
  char* err = nullptr;
  EXPECT_EQ(reapi_create(nullptr, nullptr, &err), nullptr);
  reapi_free_string(err);
  err = nullptr;
  EXPECT_EQ(reapi_create("bogus ###", nullptr, &err), nullptr);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(std::string(err).find("grug"), std::string::npos);
  reapi_free_string(err);
  err = nullptr;
  EXPECT_EQ(reapi_create(kGrug, "no-such-policy", &err), nullptr);
  reapi_free_string(err);
}

TEST_F(ReapiTest, MatchAllocateAndCancel) {
  uint64_t job = 0;
  int64_t at = -1;
  int reserved = -1;
  char* rlite = nullptr;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job, &at,
                        &reserved, &rlite),
            REAPI_OK);
  EXPECT_EQ(at, 0);
  EXPECT_EQ(reserved, 0);
  ASSERT_NE(rlite, nullptr);
  EXPECT_NE(std::string(rlite).find("\"core\":4"), std::string::npos);
  reapi_free_string(rlite);
  EXPECT_EQ(reapi_job_count(ctx), 1u);
  EXPECT_EQ(reapi_cancel(ctx, job), REAPI_OK);
  EXPECT_EQ(reapi_job_count(ctx), 0u);
  EXPECT_EQ(reapi_cancel(ctx, job), REAPI_ENOENT);
}

TEST_F(ReapiTest, BusyThenReserve) {
  uint64_t a = 0, b = 0, c = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &a, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &b, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &c, nullptr,
                        nullptr, nullptr),
            REAPI_EBUSY);
  int64_t at = -1;
  int reserved = -1;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE_ORELSE_RESERVE, kJobspec,
                        0, &c, &at, &reserved, nullptr),
            REAPI_OK);
  EXPECT_EQ(at, 100);
  EXPECT_EQ(reserved, 1);
}

TEST_F(ReapiTest, InfoRoundTrip) {
  uint64_t job = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job,
                        nullptr, nullptr, nullptr),
            REAPI_OK);
  int64_t at = -1, duration = -1;
  int reserved = -1;
  ASSERT_EQ(reapi_info(ctx, job, &at, &duration, &reserved), REAPI_OK);
  EXPECT_EQ(at, 0);
  EXPECT_EQ(duration, 100);
  EXPECT_EQ(reserved, 0);
  EXPECT_EQ(reapi_info(ctx, job + 5, nullptr, nullptr, nullptr),
            REAPI_ENOENT);
}

TEST_F(ReapiTest, SatisfiabilityAndErrors) {
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_SATISFIABILITY, kJobspec, 0,
                        nullptr, nullptr, nullptr, nullptr),
            REAPI_OK);
  const char* too_big =
      "resources:\n"
      "  - type: slot\n"
      "    with:\n"
      "      - type: node\n"
      "        count: 3\n"
      "        exclusive: true\n";
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_SATISFIABILITY, too_big, 0, nullptr,
                        nullptr, nullptr, nullptr),
            REAPI_ENOTSUP);
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, "not yaml: [", 0, nullptr,
                        nullptr, nullptr, nullptr),
            REAPI_EINVAL);
  EXPECT_EQ(reapi_match(nullptr, REAPI_MATCH_ALLOCATE, kJobspec, 0, nullptr,
                        nullptr, nullptr, nullptr),
            REAPI_EINVAL);
}

TEST_F(ReapiTest, AuditReportsCoherentState) {
  EXPECT_EQ(reapi_audit(nullptr), REAPI_EINVAL);
  EXPECT_EQ(reapi_set_audit(nullptr, 1), REAPI_EINVAL);
  // Fresh context is coherent, and stays so across a mutation storm with
  // the per-mutation audit hook armed.
  EXPECT_EQ(reapi_audit(ctx), REAPI_OK);
  ASSERT_EQ(reapi_set_audit(ctx, 1), REAPI_OK);
  uint64_t a = 0;
  uint64_t b = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &a, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &b, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  EXPECT_EQ(reapi_audit(ctx), REAPI_OK);
  EXPECT_EQ(reapi_cancel(ctx, a), REAPI_OK);
  EXPECT_EQ(reapi_audit(ctx), REAPI_OK);
  EXPECT_EQ(reapi_cancel(ctx, b), REAPI_OK);
  ASSERT_EQ(reapi_set_audit(ctx, 0), REAPI_OK);
  EXPECT_EQ(reapi_audit(ctx), REAPI_OK);
}

TEST_F(ReapiTest, MetricsLifecycle) {
  EXPECT_EQ(reapi_metrics_json(nullptr), REAPI_EINVAL);
  ASSERT_EQ(reapi_metrics_clear(), REAPI_OK);
  ASSERT_EQ(reapi_metrics_set_enabled(1), REAPI_OK);
  uint64_t job = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job,
                        nullptr, nullptr, nullptr),
            REAPI_OK);
  char* doc = nullptr;
  ASSERT_EQ(reapi_metrics_json(&doc), REAPI_OK);
  ASSERT_NE(doc, nullptr);
  const std::string json(doc);
  reapi_free_string(doc);
  EXPECT_NE(json.find("\"traverser\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"allocate\":{\"calls\":1"), std::string::npos)
      << json;
  // Clearing zeroes the document; disabling stops collection entirely.
  ASSERT_EQ(reapi_metrics_clear(), REAPI_OK);
  ASSERT_EQ(reapi_metrics_set_enabled(0), REAPI_OK);
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job,
                        nullptr, nullptr, nullptr),
            REAPI_OK);  // node1 is still free
  doc = nullptr;
  ASSERT_EQ(reapi_metrics_json(&doc), REAPI_OK);
  const std::string cleared(doc);
  reapi_free_string(doc);
  EXPECT_NE(cleared.find("\"visits\":0"), std::string::npos) << cleared;
  EXPECT_NE(cleared.find("\"allocate\":{\"calls\":0"), std::string::npos)
      << cleared;
}

TEST_F(ReapiTest, SetStatusEvictsAndBlocksMatching) {
  uint64_t a = 0, b = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &a, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  // Down node0 (where LowId placed job a): the job is killed (the C ABI
  // context has no queue) and the node stops matching.
  uint64_t evicted = 0;
  ASSERT_EQ(reapi_set_status(ctx, "/cluster0/node0", "down", &evicted),
            REAPI_OK);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(reapi_job_count(ctx), 0u);
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &b, nullptr,
                        nullptr, nullptr),
            REAPI_OK);  // node1 still up
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &b, nullptr,
                        nullptr, nullptr),
            REAPI_EBUSY);  // the only up node is taken
  ASSERT_EQ(reapi_set_status(ctx, "/cluster0/node0", "up", nullptr),
            REAPI_OK);
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &b, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  EXPECT_EQ(reapi_audit(ctx), REAPI_OK);
  EXPECT_EQ(reapi_set_status(ctx, "/cluster0/node9", "down", nullptr),
            REAPI_ENOENT);
  EXPECT_EQ(reapi_set_status(ctx, "/cluster0/node0", "offline", nullptr),
            REAPI_EINVAL);
}

TEST_F(ReapiTest, GrowAndShrinkRoundTrip) {
  char* root_path = nullptr;
  ASSERT_EQ(reapi_grow(ctx, "/cluster0",
                       "node count=1\n  core count=4\n", &root_path),
            REAPI_OK);
  ASSERT_NE(root_path, nullptr);
  EXPECT_STREQ(root_path, "/cluster0/node2");
  reapi_free_string(root_path);

  // Three whole-node jobs now fit; the third lands on the grown node.
  uint64_t ids[3] = {0, 0, 0};
  for (auto& id : ids) {
    ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &id,
                          nullptr, nullptr, nullptr),
              REAPI_OK);
  }
  uint64_t evicted = 0;
  ASSERT_EQ(reapi_shrink(ctx, "/cluster0/node2", &evicted), REAPI_OK);
  EXPECT_EQ(evicted, 1u);
  EXPECT_EQ(reapi_job_count(ctx), 2u);
  EXPECT_EQ(reapi_audit(ctx), REAPI_OK);
  EXPECT_EQ(reapi_shrink(ctx, "/cluster0/node2", nullptr), REAPI_ENOENT);
  EXPECT_EQ(reapi_grow(ctx, "/cluster0", "node count=-1\n", nullptr),
            REAPI_EINVAL);
}

TEST_F(ReapiTest, ExplainJsonAttributesABusyMatch) {
  EXPECT_EQ(reapi_set_introspection(nullptr, 1), REAPI_EINVAL);
  ASSERT_EQ(reapi_set_introspection(ctx, 1), REAPI_OK);
  uint64_t a = 0, b = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &a, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &b, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  // Machine full: the next attempt fails but its verdict is kept under
  // the id the job would have had.
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, nullptr,
                        nullptr, nullptr, nullptr),
            REAPI_EBUSY);
  char* doc = nullptr;
  ASSERT_EQ(reapi_explain_json(ctx, b + 1, &doc), REAPI_OK);
  ASSERT_NE(doc, nullptr);
  const std::string json(doc);
  reapi_free_string(doc);
  EXPECT_NE(json.find("\"op\":\"allocate\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\":\"resource_busy\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dominant\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hint\":100"), std::string::npos) << json;
  // A successful attempt reads ok with no attribution payload.
  doc = nullptr;
  ASSERT_EQ(reapi_explain_json(ctx, a, &doc), REAPI_OK);
  const std::string ok_json(doc);
  reapi_free_string(doc);
  EXPECT_NE(ok_json.find("\"code\":\"ok\""), std::string::npos) << ok_json;
  EXPECT_EQ(ok_json.find("\"dominant\":"), std::string::npos) << ok_json;
  // Unknown ids and bad arguments are reported, not rendered.
  EXPECT_EQ(reapi_explain_json(ctx, 999, &doc), REAPI_ENOENT);
  EXPECT_EQ(reapi_explain_json(ctx, a, nullptr), REAPI_EINVAL);
  EXPECT_EQ(reapi_explain_json(nullptr, a, &doc), REAPI_EINVAL);
}

TEST_F(ReapiTest, ExplainJsonWithoutIntrospectionHasCodeOnly) {
  uint64_t a = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &a, nullptr,
                        nullptr, nullptr),
            REAPI_OK);
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, nullptr,
                        nullptr, nullptr, nullptr),
            REAPI_OK);
  EXPECT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, nullptr,
                        nullptr, nullptr, nullptr),
            REAPI_EBUSY);
  char* doc = nullptr;
  ASSERT_EQ(reapi_explain_json(ctx, a + 2, &doc), REAPI_OK);
  const std::string json(doc);
  reapi_free_string(doc);
  EXPECT_NE(json.find("\"code\":\"resource_busy\""), std::string::npos)
      << json;
  EXPECT_EQ(json.find("\"dominant\":"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"hint\":"), std::string::npos) << json;
}

TEST_F(ReapiTest, PrometheusExport) {
  EXPECT_EQ(reapi_metrics_prometheus(nullptr), REAPI_EINVAL);
  ASSERT_EQ(reapi_metrics_clear(), REAPI_OK);
  ASSERT_EQ(reapi_metrics_set_enabled(1), REAPI_OK);
  uint64_t job = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job,
                        nullptr, nullptr, nullptr),
            REAPI_OK);
  char* text = nullptr;
  ASSERT_EQ(reapi_metrics_prometheus(&text), REAPI_OK);
  ASSERT_NE(text, nullptr);
  const std::string prom(text);
  reapi_free_string(text);
  ASSERT_EQ(reapi_metrics_set_enabled(0), REAPI_OK);
  EXPECT_NE(prom.find("# TYPE fluxion_traverser_visits_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("fluxion_op_calls_total{op=\"allocate\"} 1"),
            std::string::npos);
}

TEST_F(ReapiTest, TraversalModeRoundTripAndMatch) {
  EXPECT_EQ(reapi_traversal_mode(ctx), REAPI_TRAVERSAL_SCORED);
  EXPECT_EQ(reapi_set_traversal_mode(ctx, REAPI_TRAVERSAL_FIRST_MATCH),
            REAPI_OK);
  EXPECT_EQ(reapi_traversal_mode(ctx), REAPI_TRAVERSAL_FIRST_MATCH);
  EXPECT_EQ(reapi_set_traversal_mode(nullptr, REAPI_TRAVERSAL_SCORED),
            REAPI_EINVAL);
  EXPECT_EQ(reapi_traversal_mode(ctx), REAPI_TRAVERSAL_FIRST_MATCH);

  // Matching still works in first-match mode, and the selection is a
  // real allocation the audit accepts.
  uint64_t job = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job,
                        nullptr, nullptr, nullptr),
            REAPI_OK);
  EXPECT_EQ(reapi_audit(ctx), REAPI_OK);
  EXPECT_EQ(reapi_cancel(ctx, job), REAPI_OK);
  EXPECT_EQ(reapi_set_traversal_mode(ctx, REAPI_TRAVERSAL_SCORED),
            REAPI_OK);
  EXPECT_EQ(reapi_traversal_mode(ctx), REAPI_TRAVERSAL_SCORED);
}

TEST_F(ReapiTest, SnapshotSaveLoadRoundTrip) {
  uint64_t job = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job,
                        nullptr, nullptr, nullptr),
            REAPI_OK);

  char* bytes = nullptr;
  uint64_t len = 0;
  ASSERT_EQ(reapi_snapshot_save(ctx, &bytes, &len), REAPI_OK);
  ASSERT_NE(bytes, nullptr);
  ASSERT_GT(len, 0u);

  char* err = nullptr;
  reapi_ctx_t* restored = reapi_snapshot_load(bytes, len, &err);
  ASSERT_NE(restored, nullptr) << (err != nullptr ? err : "?");
  reapi_free_string(err);
  // The restored engine carries the claim: cancelling the same job id
  // works, and the audit accepts the state.
  EXPECT_EQ(reapi_audit(restored), REAPI_OK);
  EXPECT_EQ(reapi_mutation_epoch(restored), reapi_mutation_epoch(ctx));
  EXPECT_EQ(reapi_cancel(restored, job), REAPI_OK);
  reapi_destroy(restored);

  // Corrupt bytes are refused with a diagnostic, never half-loaded.
  err = nullptr;
  EXPECT_EQ(reapi_snapshot_load("garbage", 7, &err), nullptr);
  ASSERT_NE(err, nullptr);
  reapi_free_string(err);
  reapi_free_string(bytes);
}

TEST_F(ReapiTest, ReplicaServesReadsAndTracksStaleness) {
  uint64_t job = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job,
                        nullptr, nullptr, nullptr),
            REAPI_OK);
  char* bytes = nullptr;
  uint64_t len = 0;
  ASSERT_EQ(reapi_snapshot_save(ctx, &bytes, &len), REAPI_OK);

  char* err = nullptr;
  reapi_replica_t* rep = reapi_replica_open(bytes, len, &err);
  ASSERT_NE(rep, nullptr) << (err != nullptr ? err : "?");
  reapi_free_string(err);
  EXPECT_EQ(reapi_replica_epoch(rep), reapi_mutation_epoch(ctx));
  EXPECT_EQ(reapi_replica_stale(rep, reapi_mutation_epoch(ctx)), 0);

  int sat = -1;
  ASSERT_EQ(reapi_replica_satisfiable(rep, kJobspec, &sat), REAPI_OK);
  EXPECT_EQ(sat, 1);
  int64_t at = -1;
  ASSERT_EQ(reapi_replica_earliest_start(rep, kJobspec, 0, &at), REAPI_OK);
  EXPECT_EQ(at, 0);  // the second node is free right now

  // Writer commits again: the replica is stale until refreshed.
  uint64_t job2 = 0;
  ASSERT_EQ(reapi_match(ctx, REAPI_MATCH_ALLOCATE, kJobspec, 0, &job2,
                        nullptr, nullptr, nullptr),
            REAPI_OK);
  EXPECT_EQ(reapi_replica_stale(rep, reapi_mutation_epoch(ctx)), 1);
  reapi_free_string(bytes);
  bytes = nullptr;
  ASSERT_EQ(reapi_snapshot_save(ctx, &bytes, &len), REAPI_OK);
  ASSERT_EQ(reapi_replica_refresh(rep, bytes, len), REAPI_OK);
  EXPECT_EQ(reapi_replica_stale(rep, reapi_mutation_epoch(ctx)), 0);
  // Both nodes now busy until t=100: the replica sees the later start.
  ASSERT_EQ(reapi_replica_earliest_start(rep, kJobspec, 0, &at), REAPI_OK);
  EXPECT_EQ(at, 100);

  reapi_replica_destroy(rep);
  reapi_free_string(bytes);
}

TEST_F(ReapiTest, FedMemberSnapshotLoadsAsReplica) {
  constexpr const char* kFedGrug =
      "filters core\nfilter-at cluster\n"
      "cluster count=1\n  node count=4\n    core count=4\n";
  char* err = nullptr;
  reapi_fed_t* fed =
      reapi_fed_create(kFedGrug, 2, 1, "round_robin", "low-id", 0.0, &err);
  ASSERT_NE(fed, nullptr) << (err != nullptr ? err : "?");
  reapi_free_string(err);

  char* bytes = nullptr;
  uint64_t len = 0;
  ASSERT_EQ(reapi_fed_member_snapshot(fed, 0, &bytes, &len), REAPI_OK);
  ASSERT_GT(len, 0u);
  EXPECT_EQ(reapi_fed_member_snapshot(fed, 99, &bytes, &len), REAPI_EINVAL);

  err = nullptr;
  reapi_replica_t* rep = reapi_replica_open(bytes, len, &err);
  ASSERT_NE(rep, nullptr) << (err != nullptr ? err : "?");
  reapi_free_string(err);
  // The leaf owns 2 of the 4 nodes: a 1-node job fits, 3 nodes never do.
  int sat = -1;
  ASSERT_EQ(reapi_replica_satisfiable(rep, kJobspec, &sat), REAPI_OK);
  EXPECT_EQ(sat, 1);

  reapi_replica_destroy(rep);
  reapi_free_string(bytes);
  reapi_fed_destroy(fed);
}

}  // namespace
