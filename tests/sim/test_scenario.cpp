// Dynamic-resource scenarios: parse/format round-trip, error reporting,
// and the paper-style end-to-end story — jobs running, a node fails
// mid-run, the victim is evicted and requeued, a new rack grows, and the
// requeued job lands on it — deterministically.
#include <gtest/gtest.h>

#include <map>

#include "dynamic/dynamic.hpp"
#include "grug/grug.hpp"
#include "policy/policies.hpp"
#include "sim/scenario.hpp"

namespace fluxion::sim {
namespace {

constexpr const char* kSystem = R"(
filters node core
filter-at cluster rack
cluster count=1
  rack count=2
    node count=2
      core count=4
)";

constexpr const char* kRackFragment = R"(
filters node core
filter-at rack
rack count=1
  node count=2
    core count=4
)";

struct World {
  graph::ResourceGraph g{0, 1 << 20};
  graph::VertexId root = graph::kInvalidVertex;
  policy::LowIdPolicy pol;
  std::unique_ptr<traverser::Traverser> trav;
  std::unique_ptr<queue::JobQueue> q;
  std::unique_ptr<dynamic::DynamicResources> dyn;

  World() {
    auto recipe = grug::parse(kSystem);
    EXPECT_TRUE(recipe);
    auto r = grug::build(g, *recipe);
    EXPECT_TRUE(r);
    root = *r;
    trav = std::make_unique<traverser::Traverser>(g, root, pol);
    trav->set_audit(true);
    q = std::make_unique<queue::JobQueue>(
        *trav, queue::QueuePolicy::conservative_backfill);
    dyn = std::make_unique<dynamic::DynamicResources>(g, *trav, q.get());
  }
};

RecipeResolver fragment_resolver() {
  return [](const std::string& ref) -> util::Expected<std::string> {
    static const std::map<std::string, std::string> recipes = {
        {"rack.grug", kRackFragment}};
    const auto it = recipes.find(ref);
    if (it == recipes.end()) {
      return util::Error{util::Errc::not_found, "no recipe '" + ref + "'"};
    }
    return it->second;
  };
}

TEST(Scenario, ParseAndFormatRoundTrip) {
  const std::string text =
      "# jobs\n"
      "1 1000\n"
      "2 500 10\n"
      "@ 500 status /cluster0/rack0/node0 down\n"
      "@ 550 status /cluster0/rack0/node0 up kill\n"
      "@ 600 grow /cluster0 rack.grug\n"
      "@ 700 shrink /cluster0/rack1 kill\n";
  auto parsed = parse_scenario(text);
  ASSERT_TRUE(parsed) << parsed.error().message;
  ASSERT_EQ(parsed->jobs.size(), 2u);
  EXPECT_EQ(parsed->jobs[1].arrival, 10);
  ASSERT_EQ(parsed->events.size(), 4u);
  EXPECT_EQ(parsed->events[0].kind, DynEventKind::status);
  EXPECT_EQ(parsed->events[0].status, graph::ResourceStatus::down);
  EXPECT_EQ(parsed->events[0].policy, queue::EvictPolicy::requeue);
  EXPECT_EQ(parsed->events[1].policy, queue::EvictPolicy::kill);
  EXPECT_EQ(parsed->events[2].kind, DynEventKind::grow);
  EXPECT_EQ(parsed->events[2].recipe_ref, "rack.grug");
  EXPECT_EQ(parsed->events[3].kind, DynEventKind::shrink);
  EXPECT_EQ(parsed->events[3].policy, queue::EvictPolicy::kill);

  auto reparsed = parse_scenario(format_scenario(*parsed));
  ASSERT_TRUE(reparsed) << reparsed.error().message;
  ASSERT_EQ(reparsed->events.size(), parsed->events.size());
  for (std::size_t i = 0; i < parsed->events.size(); ++i) {
    EXPECT_EQ(reparsed->events[i].kind, parsed->events[i].kind) << i;
    EXPECT_EQ(reparsed->events[i].at, parsed->events[i].at) << i;
    EXPECT_EQ(reparsed->events[i].path, parsed->events[i].path) << i;
    EXPECT_EQ(reparsed->events[i].policy, parsed->events[i].policy) << i;
  }
}

TEST(Scenario, ParseRejectsMalformedEvents) {
  EXPECT_FALSE(parse_scenario("@ 10 explode /x\n"));
  EXPECT_FALSE(parse_scenario("@ 10 status /x sideways\n"));
  EXPECT_FALSE(parse_scenario("@ 10 status /x down maybe\n"));
  EXPECT_FALSE(parse_scenario("@ -5 status /x down\n"));
  EXPECT_FALSE(parse_scenario("@ 10 grow /x\n"));
  EXPECT_FALSE(parse_scenario("@ 10 status noslash down\n"));
  const auto err = parse_scenario("1 100\n@ bad status /x down\n");
  ASSERT_FALSE(err);
  EXPECT_NE(err.error().message.find("scenario:2"), std::string::npos)
      << err.error().message;
}

TEST(Scenario, NodeFailureEvictGrowAndLandOnNewRack) {
  // 4 one-node jobs start at t=0 on the 4 nodes. At t=500 a node fails:
  // its job is requeued with nowhere to go. At t=600 a new rack grows and
  // the job restarts there; everything completes.
  const char* scenario_text =
      "1 1000\n1 1000\n1 1000\n1 1000\n"
      "@ 500 status /cluster0/rack0/node0 down\n"
      "@ 600 grow /cluster0 rack.grug\n";
  auto scenario = parse_scenario(scenario_text);
  ASSERT_TRUE(scenario);

  World w;
  auto r = replay_scenario(*w.q, *w.dyn, *scenario, 4, fragment_resolver());
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->status_events, 1u);
  EXPECT_EQ(r->grow_events, 1u);
  ASSERT_EQ(r->evicted.size(), 1u);

  const queue::Job* victim = w.q->find(r->evicted[0]);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->state, queue::JobState::completed);
  EXPECT_EQ(victim->start_time, 600);  // restarted when the rack arrived
  EXPECT_EQ(victim->end_time, 1600);
  bool on_new_rack = false;
  for (const auto& ru : victim->resources) {
    if (w.g.vertex(ru.vertex).path.rfind("/cluster0/rack2", 0) == 0) {
      on_new_rack = true;
    }
  }
  EXPECT_TRUE(on_new_rack);
  EXPECT_EQ(r->end_time, 1600);
  EXPECT_EQ(w.q->stats().completed, 4u);
  EXPECT_TRUE(w.trav->audit());

  // Determinism: an identical fresh world replays to the same schedule.
  World w2;
  auto r2 = replay_scenario(*w2.q, *w2.dyn, *scenario, 4,
                            fragment_resolver());
  ASSERT_TRUE(r2);
  ASSERT_EQ(r2->ids.size(), r->ids.size());
  for (std::size_t i = 0; i < r->ids.size(); ++i) {
    const queue::Job* a = w.q->find(r->ids[i]);
    const queue::Job* b = w2.q->find(r2->ids[i]);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->start_time, b->start_time) << i;
    EXPECT_EQ(a->end_time, b->end_time) << i;
    EXPECT_EQ(a->state, b->state) << i;
  }
  EXPECT_EQ(r2->end_time, r->end_time);
}

TEST(Scenario, ShrinkEventKillsAndDetaches) {
  const char* scenario_text =
      "1 1000\n1 1000\n1 1000\n1 1000\n"
      "@ 100 shrink /cluster0/rack1 kill\n";
  auto scenario = parse_scenario(scenario_text);
  ASSERT_TRUE(scenario);
  World w;
  auto r = replay_scenario(*w.q, *w.dyn, *scenario, 4, fragment_resolver());
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->shrink_events, 1u);
  EXPECT_EQ(r->evicted.size(), 2u);  // rack1 hosted two jobs
  EXPECT_FALSE(w.g.find_by_path("/cluster0/rack1").has_value());
  std::size_t killed = 0;
  for (const auto id : r->evicted) {
    if (w.q->find(id)->state == queue::JobState::canceled) ++killed;
  }
  EXPECT_EQ(killed, 2u);
  EXPECT_EQ(w.q->stats().completed, 2u);
  EXPECT_TRUE(w.trav->audit());
}

TEST(Scenario, UnknownPathOrRecipeFailsReplay) {
  World w;
  auto s1 = parse_scenario("1 10\n@ 5 status /cluster0/rack9 down\n");
  ASSERT_TRUE(s1);
  auto r1 = replay_scenario(*w.q, *w.dyn, *s1, 4, fragment_resolver());
  ASSERT_FALSE(r1);
  EXPECT_EQ(r1.error().code, util::Errc::not_found);

  World w2;
  auto s2 = parse_scenario("1 10\n@ 5 grow /cluster0 nope.grug\n");
  ASSERT_TRUE(s2);
  auto r2 = replay_scenario(*w2.q, *w2.dyn, *s2, 4, fragment_resolver());
  ASSERT_FALSE(r2);
  EXPECT_EQ(r2.error().code, util::Errc::not_found);
}

}  // namespace
}  // namespace fluxion::sim
