#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "policy/policies.hpp"

namespace fluxion::sim {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() : g(0, 1 << 20) {
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster\n"
        "cluster count=1\n  node count=4\n    core count=4\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    trav = std::make_unique<traverser::Traverser>(g, *root, pol);
  }
  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<traverser::Traverser> trav;
};

TEST_F(ReplayTest, ArrivalsGateSubmission) {
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  std::vector<TraceJob> trace{
      {4, 100, 0},    // holds the machine [0, 100)
      {4, 50, 30},    // arrives mid-run -> waits until 100
      {1, 10, 500},   // arrives after everything finished -> starts at 500
  };
  auto r = replay_trace(q, trace, 4);
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(q.find(r->ids[0])->start_time, 0);
  EXPECT_EQ(q.find(r->ids[1])->submit_time, 30);
  EXPECT_EQ(q.find(r->ids[1])->start_time, 100);
  EXPECT_EQ(q.find(r->ids[2])->submit_time, 500);
  EXPECT_EQ(q.find(r->ids[2])->start_time, 500);
  EXPECT_EQ(r->end_time, 510);
  EXPECT_EQ(q.stats().completed, 3u);
}

TEST_F(ReplayTest, WaitTimesMeasuredFromArrival) {
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  std::vector<TraceJob> trace{{4, 100, 0}, {2, 10, 60}};
  auto r = replay_trace(q, trace, 4);
  ASSERT_TRUE(r);
  const auto m = q.metrics();
  // Second job waited 100 - 60 = 40.
  EXPECT_EQ(m.max_wait, 40);
}

TEST_F(ReplayTest, OutOfOrderArrivalsAreSorted) {
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  std::vector<TraceJob> trace{{1, 10, 200}, {1, 10, 0}, {1, 10, 100}};
  auto r = replay_trace(q, trace, 4);
  ASSERT_TRUE(r);
  EXPECT_EQ(q.find(r->ids[1])->start_time, 0);
  EXPECT_EQ(q.find(r->ids[2])->start_time, 100);
  EXPECT_EQ(q.find(r->ids[0])->start_time, 200);
}

TEST_F(ReplayTest, UsedQueueRejected) {
  queue::JobQueue q(*trav, queue::QueuePolicy::fcfs);
  auto js = trace_jobspec({1, 10}, 4);
  ASSERT_TRUE(js);
  q.submit(*js);
  std::vector<TraceJob> trace{{1, 10, 0}};
  EXPECT_FALSE(replay_trace(q, trace, 4));
}

TEST_F(ReplayTest, OnlineBeatsSnapshotOnWaits) {
  // With arrivals spread out, the same workload has far lower waits than
  // the submit-everything-at-once snapshot replay.
  util::Rng rng(9);
  TraceConfig cfg;
  cfg.job_count = 40;
  cfg.max_nodes = 4;
  cfg.min_duration = 10;
  cfg.max_duration = 100;
  auto trace = generate_trace(cfg, rng);
  double snapshot_wait = 0;
  {
    graph::ResourceGraph g2(0, 1 << 20);
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster\n"
        "cluster count=1\n  node count=4\n    core count=4\n");
    auto root = grug::build(g2, *recipe);
    policy::LowIdPolicy pol2;
    traverser::Traverser t2(g2, *root, pol2);
    queue::JobQueue q(t2, queue::QueuePolicy::conservative_backfill);
    for (const auto& tj : trace) q.submit(*trace_jobspec(tj, 4));
    q.run_to_completion();
    snapshot_wait = q.metrics().avg_wait;
  }
  stamp_poisson_arrivals(trace, 200.0, rng);
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  auto r = replay_trace(q, trace, 4);
  ASSERT_TRUE(r);
  EXPECT_LT(q.metrics().avg_wait, snapshot_wait);
}

}  // namespace
}  // namespace fluxion::sim
