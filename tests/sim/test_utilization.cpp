#include "sim/utilization.hpp"

#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "policy/policies.hpp"
#include "sim/workload.hpp"

namespace fluxion::sim {
namespace {

class UtilizationTest : public ::testing::Test {
 protected:
  UtilizationTest() : g(0, 1 << 20) {
    auto recipe = grug::parse(
        "filters node core\nfilter-at cluster\n"
        "cluster count=1\n  node count=4\n    core count=4\n");
    EXPECT_TRUE(recipe);
    auto root = grug::build(g, *recipe);
    EXPECT_TRUE(root);
    trav = std::make_unique<traverser::Traverser>(g, *root, pol);
  }
  graph::ResourceGraph g;
  policy::LowIdPolicy pol;
  std::unique_ptr<traverser::Traverser> trav;
};

TEST_F(UtilizationTest, StepFunctionMatchesSchedule) {
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  auto js2 = trace_jobspec({2, 100}, 4);
  auto js4 = trace_jobspec({4, 50}, 4);
  ASSERT_TRUE(js2);
  ASSERT_TRUE(js4);
  q.submit(*js2);  // [0, 100): 2 nodes
  q.submit(*js4);  // [100, 150): 4 nodes
  q.run_to_completion();
  const auto tl = utilization_timeline(q);
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].at, 0);
  EXPECT_EQ(tl[0].busy_nodes, 2);
  EXPECT_EQ(tl[1].at, 100);
  EXPECT_EQ(tl[1].busy_nodes, 4);
  EXPECT_EQ(tl[2].at, 150);
  EXPECT_EQ(tl[2].busy_nodes, 0);
  // Mean: (2*100 + 4*50) / 150 = 400/150.
  EXPECT_NEAR(mean_utilization(tl, 150), 400.0 / 150.0, 1e-9);
}

TEST_F(UtilizationTest, CsvRendering) {
  queue::JobQueue q(*trav, queue::QueuePolicy::fcfs);
  auto js = trace_jobspec({1, 10}, 4);
  ASSERT_TRUE(js);
  q.submit(*js);
  q.run_to_completion();
  const std::string csv = utilization_csv(utilization_timeline(q));
  EXPECT_NE(csv.find("time,busy_nodes\n0,1\n10,0\n"), std::string::npos)
      << csv;
}

TEST_F(UtilizationTest, EmptyQueue) {
  queue::JobQueue q(*trav, queue::QueuePolicy::fcfs);
  EXPECT_TRUE(utilization_timeline(q).empty());
  EXPECT_DOUBLE_EQ(mean_utilization({}, 100), 0.0);
}

TEST_F(UtilizationTest, OverlappingJobsStack) {
  queue::JobQueue q(*trav, queue::QueuePolicy::conservative_backfill);
  auto a = trace_jobspec({1, 100}, 4);
  auto b = trace_jobspec({2, 40}, 4);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  q.submit(*a);
  q.submit(*b);
  q.run_to_completion();
  const auto tl = utilization_timeline(q);
  // [0,40): 3 busy; [40,100): 1 busy.
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0].busy_nodes, 3);
  EXPECT_EQ(tl[1].at, 40);
  EXPECT_EQ(tl[1].busy_nodes, 1);
}

}  // namespace
}  // namespace fluxion::sim
