#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "grug/recipes.hpp"
#include "policy/policies.hpp"
#include "sim/perf_classes.hpp"
#include "sim/workload.hpp"

namespace fluxion::sim {
namespace {

TEST(PerfClasses, Eq1Boundaries) {
  EXPECT_EQ(perf_class_for_tnorm(0.0), 1);
  EXPECT_EQ(perf_class_for_tnorm(0.10), 1);
  EXPECT_EQ(perf_class_for_tnorm(0.1000001), 2);
  EXPECT_EQ(perf_class_for_tnorm(0.25), 2);
  EXPECT_EQ(perf_class_for_tnorm(0.40), 3);
  EXPECT_EQ(perf_class_for_tnorm(0.60), 4);
  EXPECT_EQ(perf_class_for_tnorm(0.61), 5);
  EXPECT_EQ(perf_class_for_tnorm(1.0), 5);
}

TEST(PerfClasses, HistogramMatchesPaperShape) {
  // 2418 nodes -> 10% / 15% / 15% / 20% / 40% (paper Figure 7a).
  util::Rng rng(1);
  const auto tnorm = synthesize_tnorm(2418, rng);
  const auto classes = classes_from_tnorm(tnorm);
  const auto hist = class_histogram(classes);
  EXPECT_EQ(hist[1], 241);  // floor(0.10 * 2418)
  EXPECT_EQ(hist[2], 363);
  EXPECT_EQ(hist[3], 363);
  EXPECT_EQ(hist[4], 483);
  EXPECT_EQ(hist[5], 968);
  EXPECT_EQ(hist[1] + hist[2] + hist[3] + hist[4] + hist[5], 2418);
}

TEST(PerfClasses, SynthesisIsDeterministicPermutation) {
  util::Rng a(7), b(7), c(8);
  const auto ta = synthesize_tnorm(100, a);
  const auto tb = synthesize_tnorm(100, b);
  const auto tc = synthesize_tnorm(100, c);
  EXPECT_EQ(ta, tb);
  EXPECT_NE(ta, tc);
  auto sorted = ta;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_DOUBLE_EQ(sorted[i], static_cast<double>(i + 1) / 100.0);
  }
}

TEST(PerfClasses, ApplyStampsNodeProperties) {
  graph::ResourceGraph g(0, 1000);
  auto root = grug::build(g, grug::recipes::quartz(false, 2, 3, 4));
  ASSERT_TRUE(root);
  util::Rng rng(3);
  const auto classes = classes_from_tnorm(synthesize_tnorm(6, rng));
  ASSERT_TRUE(apply_performance_classes(g, classes));
  const auto nodes = g.vertices_of_type(*g.find_type("node"));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(policy::perf_class_of(g, nodes[i]), classes[i]);
  }
}

TEST(PerfClasses, ApplySizeMismatchFails) {
  graph::ResourceGraph g(0, 1000);
  ASSERT_TRUE(grug::build(g, grug::recipes::quartz(false, 1, 2, 4)));
  EXPECT_FALSE(apply_performance_classes(g, {1, 2, 3}));
}

TEST(FigureOfMerit, ZeroForSingleClassAllocations) {
  graph::ResourceGraph g(0, 1000);
  ASSERT_TRUE(grug::build(g, grug::recipes::quartz(false, 1, 4, 4)));
  const auto nodes = g.vertices_of_type(*g.find_type("node"));
  ASSERT_TRUE(apply_performance_classes(g, {2, 2, 3, 5}));
  std::vector<traverser::ResourceUnit> alloc{
      {nodes[0], 1, true}, {nodes[1], 1, true}};
  EXPECT_EQ(figure_of_merit(g, alloc), 0);
  alloc.push_back({nodes[3], 1, true});
  EXPECT_EQ(figure_of_merit(g, alloc), 3);  // classes {2,2,5}
  alloc.push_back({nodes[2], 1, true});
  EXPECT_EQ(figure_of_merit(g, alloc), 3);
}

TEST(FigureOfMerit, IgnoresNonNodeResources) {
  graph::ResourceGraph g(0, 1000);
  ASSERT_TRUE(grug::build(g, grug::recipes::quartz(false, 1, 2, 4)));
  const auto nodes = g.vertices_of_type(*g.find_type("node"));
  const auto cores = g.vertices_of_type(*g.find_type("core"));
  ASSERT_TRUE(apply_performance_classes(g, {1, 5}));
  std::vector<traverser::ResourceUnit> alloc{
      {nodes[0], 1, true}, {cores[0], 1, true}, {cores[7], 1, true}};
  EXPECT_EQ(figure_of_merit(g, alloc), 0);
}

TEST(FigureOfMerit, EmptyAllocationIsZero) {
  graph::ResourceGraph g(0, 1000);
  ASSERT_TRUE(grug::build(g, grug::recipes::quartz(false, 1, 2, 4)));
  EXPECT_EQ(figure_of_merit(g, {}), 0);
}

TEST(Workload, TraceIsDeterministicAndBounded) {
  util::Rng a(11), b(11);
  TraceConfig cfg;
  cfg.job_count = 500;
  cfg.max_nodes = 128;
  const auto ta = generate_trace(cfg, a);
  const auto tb = generate_trace(cfg, b);
  ASSERT_EQ(ta.size(), 500u);
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].nodes, tb[i].nodes);
    EXPECT_EQ(ta[i].duration, tb[i].duration);
    EXPECT_GE(ta[i].nodes, 1);
    EXPECT_LE(ta[i].nodes, 128);
    EXPECT_GE(ta[i].duration, cfg.min_duration);
    EXPECT_LE(ta[i].duration, cfg.max_duration);
  }
}

TEST(Workload, LogUniformSkewsSmall) {
  util::Rng rng(13);
  TraceConfig cfg;
  cfg.job_count = 2000;
  cfg.max_nodes = 256;
  const auto trace = generate_trace(cfg, rng);
  std::size_t small = 0;
  for (const auto& j : trace) {
    if (j.nodes <= 16) ++small;
  }
  // Log-uniform over [1, 256]: half the mass below 16.
  EXPECT_GT(small, trace.size() / 3);
  EXPECT_LT(small, 2 * trace.size() / 3);
}

TEST(Workload, TraceJobspecShape) {
  auto js = trace_jobspec({4, 600}, 36);
  ASSERT_TRUE(js);
  EXPECT_EQ(js->duration, 600);
  ASSERT_EQ(js->resources.size(), 1u);
  const auto& s = js->resources[0];
  EXPECT_TRUE(s.is_slot());
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.with[0].type, "node");
  EXPECT_TRUE(s.with[0].exclusive);
  EXPECT_EQ(s.with[0].with[0].count, 36);
  // Aggregates: 4 nodes, 144 cores.
  std::map<std::string, std::int64_t> m;
  for (auto& [k, v] : js->aggregate_counts()) m[k] = v;
  EXPECT_EQ(m.at("node"), 4);
  EXPECT_EQ(m.at("core"), 144);
}

TEST(TraceIo, RoundTrip) {
  std::vector<TraceJob> trace{{1, 600}, {16, 7200}, {256, 43200}};
  auto back = parse_trace(format_trace(trace));
  ASSERT_TRUE(back) << back.error().message;
  ASSERT_EQ(back->size(), 3u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*back)[i].nodes, trace[i].nodes);
    EXPECT_EQ((*back)[i].duration, trace[i].duration);
  }
}

TEST(TraceIo, ParsesCommentsAndBlanks) {
  auto r = parse_trace("# header\n\n  4 100  \n# mid\n2 50\n");
  ASSERT_TRUE(r);
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].nodes, 4);
  EXPECT_EQ((*r)[1].duration, 50);
}

TEST(TraceIo, RejectsMalformedLines) {
  EXPECT_FALSE(parse_trace("4\n"));
  EXPECT_FALSE(parse_trace("4 100 9 1\n"));  // four fields
  EXPECT_FALSE(parse_trace("x 100\n"));
  EXPECT_FALSE(parse_trace("0 100\n"));
  EXPECT_FALSE(parse_trace("4 -1\n"));
  EXPECT_FALSE(parse_trace("4 100 -5\n"));  // negative arrival
  auto err = parse_trace("1 1\nbad\n");
  ASSERT_FALSE(err);
  EXPECT_NE(err.error().message.find("trace:2"), std::string::npos);
}

TEST(TraceIo, ArrivalsRoundTrip) {
  std::vector<TraceJob> trace{{1, 600, 0}, {16, 7200, 120}, {4, 50, 9000}};
  const std::string text = format_trace(trace);
  EXPECT_NE(text.find("16 7200 120"), std::string::npos);
  auto back = parse_trace(text);
  ASSERT_TRUE(back);
  EXPECT_EQ((*back)[2].arrival, 9000);
}

TEST(Workload, PoissonArrivalsMonotoneAndMeanish) {
  util::Rng rng(5);
  TraceConfig cfg;
  cfg.job_count = 4000;
  auto trace = generate_trace(cfg, rng);
  stamp_poisson_arrivals(trace, 100.0, rng);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
  const double mean =
      static_cast<double>(trace.back().arrival) / (trace.size() - 1);
  EXPECT_NEAR(mean, 100.0, 10.0);
}

TEST(TraceIo, EmptyTraceIsValid) {
  auto r = parse_trace("# nothing\n");
  ASSERT_TRUE(r);
  EXPECT_TRUE(r->empty());
}

}  // namespace
}  // namespace fluxion::sim
