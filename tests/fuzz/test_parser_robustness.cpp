// Robustness: every parser must reject (never crash, hang or leak
// invariants on) mutated and adversarial inputs. Deterministic mutation
// fuzzing — byte flips, truncations, duplications — over valid seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "sim/scenario.hpp"
#include "sim/workload.hpp"
#include "writers/jgf_reader.hpp"
#include "util/rng.hpp"
#include "yaml/json.hpp"
#include "yaml/yaml.hpp"

namespace fluxion {
namespace {

const std::vector<std::string>& yaml_seeds() {
  static const std::vector<std::string> seeds = {
      "version: 1\nresources:\n  - type: slot\n    count: 2\n    with:\n"
      "      - type: core\n        count: 10\n",
      "a: [1, {b: c}, 'd']\ne:\n  - f\n  - g: h\n",
      "k: {x: 1, y: [2, 3]}\n# comment\nz: ~\n",
  };
  return seeds;
}

std::string mutate(const std::string& seed, util::Rng& rng) {
  std::string s = seed;
  switch (rng.uniform(0, 4)) {
    case 0:  // flip a byte
      if (!s.empty()) {
        s[rng.index(s.size())] =
            static_cast<char>(rng.uniform(1, 126));
      }
      break;
    case 1:  // truncate
      if (!s.empty()) s.resize(rng.index(s.size()));
      break;
    case 2:  // duplicate a slice
      if (s.size() > 2) {
        const auto from = rng.index(s.size() - 1);
        const auto len = rng.index(s.size() - from) + 1;
        s.insert(rng.index(s.size()), s.substr(from, len));
      }
      break;
    case 3:  // inject structural characters
      s.insert(rng.index(s.size() + 1),
               std::string(1, "{}[]:-#'\"\n "[rng.index(12)]));
      break;
    default:  // delete a slice
      if (s.size() > 2) {
        const auto from = rng.index(s.size() - 1);
        s.erase(from, rng.index(s.size() - from) + 1);
      }
      break;
  }
  return s;
}

TEST(ParserRobustness, YamlNeverCrashes) {
  util::Rng rng(1);
  for (int i = 0; i < 3000; ++i) {
    const auto& seed = yaml_seeds()[rng.index(yaml_seeds().size())];
    const std::string input = mutate(seed, rng);
    auto r = yaml::parse(input);  // success or error; just no crash
    if (r && r->is_mapping()) {
      (void)r->get("resources");
    }
  }
}

TEST(ParserRobustness, JobspecNeverCrashes) {
  util::Rng rng(2);
  for (int i = 0; i < 3000; ++i) {
    const std::string input = mutate(yaml_seeds()[0], rng);
    auto js = jobspec::Jobspec::from_yaml(input);
    if (js) {
      // Anything accepted must satisfy the structural rules.
      EXPECT_TRUE(js->validate());
      (void)js->aggregate_counts();
      (void)js->to_yaml();
    }
  }
}

TEST(ParserRobustness, GrugNeverCrashes) {
  const std::string seed =
      "filters core\nfilter-at cluster\n"
      "cluster count=1\n  rack count=2\n    node count=3 size=1\n";
  util::Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const std::string input = mutate(seed, rng);
    auto r = grug::parse(input);
    if (r) {
      EXPECT_GE(grug::vertex_count(*r), 1);
    }
  }
}

TEST(ParserRobustness, JsonNeverCrashes) {
  const std::string seed =
      R"({"graph":{"nodes":[{"id":"0","metadata":{"type":"node"}}],)"
      R"("edges":[]}})";
  util::Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    const std::string input = mutate(seed, rng);
    (void)yaml::parse_json(input);
  }
}

TEST(ParserRobustness, TraceNeverCrashes) {
  const std::string seed = "# t\n4 100\n1 50\n256 43200\n";
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = mutate(seed, rng);
    auto r = sim::parse_trace(input);
    if (r) {
      for (const auto& j : *r) {
        EXPECT_GE(j.nodes, 1);
        EXPECT_GE(j.duration, 1);
      }
    }
  }
}

TEST(ParserRobustness, JgfWithStatusNeverCrashes) {
  // Corpus seed carrying the dynamic-resource status metadata: whatever
  // the reader accepts must still validate as a graph.
  const std::string seed =
      R"({"graph":{"nodes":[)"
      R"({"id":"0","metadata":{"type":"cluster","name":"cluster0",)"
      R"("size":1,"paths":{"containment":"/cluster0"}}},)"
      R"({"id":"1","metadata":{"type":"node","name":"node0","size":1,)"
      R"("status":"drained","paths":{"containment":"/cluster0/node0"}}},)"
      R"({"id":"2","metadata":{"type":"node","name":"node1","size":1,)"
      R"("status":"down","paths":{"containment":"/cluster0/node1"}}}],)"
      R"("edges":[{"source":"0","target":"1"},)"
      R"({"source":"0","target":"2"}]}})";
  ASSERT_TRUE(writers::read_jgf(seed, 0, 1000));  // the seed itself parses
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = mutate(seed, rng);
    auto r = writers::read_jgf(input, 0, 1000);
    if (r) {
      EXPECT_TRUE(r->graph->validate());
    }
  }
}

TEST(ParserRobustness, JgfUnknownEdgeEndpointsNamed) {
  // The unknown-endpoint diagnostic must name the offending id(s):
  // against a machine-generated JGF with thousands of edges, an
  // unattributed "unknown node" is undebuggable.
  const std::string prefix =
      R"({"graph":{"nodes":[)"
      R"({"id":"0","metadata":{"type":"cluster","name":"c0","size":1}},)"
      R"({"id":"1","metadata":{"type":"node","name":"n0","size":1}}],)";
  {
    auto r = writers::read_jgf(
        prefix + R"("edges":[{"source":"0","target":"ghost"}]}})", 0, 1000);
    ASSERT_FALSE(r);
    EXPECT_NE(r.error().message.find("'ghost'"), std::string::npos)
        << r.error().message;
  }
  {
    auto r = writers::read_jgf(
        prefix + R"("edges":[{"source":"bad-src","target":"1"}]}})", 0, 1000);
    ASSERT_FALSE(r);
    EXPECT_NE(r.error().message.find("'bad-src'"), std::string::npos)
        << r.error().message;
  }
  {
    auto r = writers::read_jgf(
        prefix + R"("edges":[{"source":"lhs","target":"rhs"}]}})", 0, 1000);
    ASSERT_FALSE(r);
    EXPECT_NE(r.error().message.find("'lhs'"), std::string::npos)
        << r.error().message;
    EXPECT_NE(r.error().message.find("'rhs'"), std::string::npos)
        << r.error().message;
  }
}

TEST(ParserRobustness, JgfMalformedEdgesNeverCrash) {
  // Mutation fuzzing over seeds that are *already* malformed (dangling
  // endpoints, missing fields, self-edges): the reader must keep
  // rejecting cleanly, never crash, and anything it does accept must
  // validate as a graph.
  const std::vector<std::string> seeds = {
      R"({"graph":{"nodes":[{"id":"0","metadata":{"type":"cluster",)"
      R"("name":"c0","size":1}}],)"
      R"("edges":[{"source":"0","target":"missing"}]}})",
      R"({"graph":{"nodes":[{"id":"0","metadata":{"type":"cluster",)"
      R"("name":"c0","size":1}}],"edges":[{"source":"0"}]}})",
      R"({"graph":{"nodes":[{"id":"0","metadata":{"type":"cluster",)"
      R"("name":"c0","size":1}}],"edges":[{"source":"0","target":"0"}]}})",
  };
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = mutate(seeds[rng.index(seeds.size())], rng);
    auto r = writers::read_jgf(input, 0, 1000);
    if (r) {
      EXPECT_TRUE(r->graph->validate());
    }
  }
}

TEST(ParserRobustness, ScenarioNeverCrashes) {
  const std::string seed =
      "2 100\n1 50 10\n"
      "@ 500 status /cluster0/rack0/node0 down requeue\n"
      "@ 600 grow /cluster0 rack.grug\n"
      "@ 700 shrink /cluster0/rack1 kill\n";
  ASSERT_TRUE(sim::parse_scenario(seed));
  util::Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = mutate(seed, rng);
    auto r = sim::parse_scenario(input);
    if (r) {
      // Accepted scenarios must survive a format/parse round-trip.
      EXPECT_TRUE(sim::parse_scenario(sim::format_scenario(*r)));
    }
  }
}

TEST(ParserRobustness, JobspecRoundTripStability) {
  // Whatever from_yaml accepts, to_yaml must re-parse to the same shape.
  util::Rng rng(6);
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string input = mutate(yaml_seeds()[0], rng);
    auto js = jobspec::Jobspec::from_yaml(input);
    if (!js) continue;
    ++accepted;
    auto again = jobspec::Jobspec::from_yaml(js->to_yaml());
    ASSERT_TRUE(again) << js->to_yaml();
    EXPECT_EQ(again->to_yaml(), js->to_yaml());
  }
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace fluxion
