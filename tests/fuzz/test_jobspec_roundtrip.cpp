// Generative property: random valid jobspec trees must validate,
// round-trip through YAML byte-identically, and match (or cleanly fail to
// match) against a real system without breaking any invariant.
#include <gtest/gtest.h>

#include "grug/grug.hpp"
#include "jobspec/jobspec.hpp"
#include "policy/policies.hpp"
#include "traverser/traverser.hpp"
#include "util/rng.hpp"

namespace fluxion::jobspec {
namespace {

const char* kLeafTypes[] = {"core", "gpu", "memory"};

/// Random resource subtree below the slot (depth-bounded).
Resource random_leafy(util::Rng& rng, int depth) {
  if (depth > 0 && rng.chance(0.3)) {
    // An intermediate socket with leaf children.
    std::vector<Resource> kids;
    const int n = static_cast<int>(rng.uniform(1, 2));
    for (int i = 0; i < n; ++i) kids.push_back(random_leafy(rng, 0));
    return res("socket", rng.uniform(1, 2), std::move(kids));
  }
  Resource leaf = res(kLeafTypes[rng.index(3)], rng.uniform(1, 4));
  if (rng.chance(0.2)) leaf.count_max = leaf.count + rng.uniform(1, 4);
  if (rng.chance(0.15)) leaf.requires_.push_back("tag=a");
  return leaf;
}

Jobspec random_jobspec(util::Rng& rng) {
  std::vector<Resource> inner;
  const int n = static_cast<int>(rng.uniform(1, 3));
  for (int i = 0; i < n; ++i) inner.push_back(random_leafy(rng, 1));
  Resource s = slot(rng.uniform(1, 3), std::move(inner));
  std::vector<Resource> top;
  if (rng.chance(0.5)) {
    top.push_back(res("node", rng.uniform(1, 2), {std::move(s)}));
  } else {
    top.push_back(std::move(s));
  }
  auto js = make(std::move(top), rng.uniform(1, 500));
  EXPECT_TRUE(js);
  return *js;
}

TEST(JobspecGenerative, RoundTripAndMatchNeverBreakInvariants) {
  graph::ResourceGraph g(0, 1 << 20);
  auto recipe = grug::parse(
      "filters node core\nfilter-at cluster\n"
      "cluster count=1\n  node count=4\n    socket count=2\n"
      "      core count=4\n      gpu count=1\n      memory count=2 size=16\n");
  ASSERT_TRUE(recipe);
  auto root = grug::build(g, *recipe);
  ASSERT_TRUE(root);
  // Tag half the cores so "tag=a" requirements are sometimes satisfiable.
  const auto cores = g.vertices_of_type(*g.find_type("core"));
  for (std::size_t i = 0; i < cores.size(); i += 2) {
    g.vertex(cores[i]).properties["tag"] = "a";
  }
  policy::LowIdPolicy pol;
  traverser::Traverser trav(g, *root, pol);

  util::Rng rng(20260705);
  traverser::JobId next = 1;
  int matched = 0;
  for (int i = 0; i < 400; ++i) {
    const Jobspec js = random_jobspec(rng);
    ASSERT_TRUE(js.validate());
    // YAML round trip is the identity on the canonical form.
    auto again = Jobspec::from_yaml(js.to_yaml());
    ASSERT_TRUE(again) << js.to_yaml();
    ASSERT_EQ(again->to_yaml(), js.to_yaml());
    // Matching either succeeds or fails with a meaningful category.
    auto r = trav.match(js, traverser::MatchOp::allocate, 0, next);
    if (r) {
      ++matched;
      ASSERT_TRUE(trav.cancel(next));
    } else {
      ASSERT_TRUE(r.error().code == util::Errc::resource_busy ||
                  r.error().code == util::Errc::unsatisfiable ||
                  r.error().code == util::Errc::out_of_range)
          << util::errc_name(r.error().code) << ": " << js.to_yaml();
    }
    ++next;
    if (i % 53 == 0) {
      ASSERT_TRUE(trav.verify_filters());
    }
  }
  // The generator must actually exercise the success path.
  EXPECT_GT(matched, 100);
  // And after all the cancels, the graph is fully idle.
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g.vertex(v).schedule->span_count(), 0u);
  }
}

}  // namespace
}  // namespace fluxion::jobspec
